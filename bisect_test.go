package logtmse

import (
	"math/bits"
	"reflect"
	"testing"
)

// findSabotageCell calibrates the canary: a (cell, seed) where a
// single skipped undo record (Sabotage.SkipLimit = 1) actually fires
// and an oracle catches it. Small signatures produce the aborts the
// sabotage needs; which workload/seed aborts first is an empirical
// detail the loop discovers rather than hard-codes.
func findSabotageCell(t *testing.T) (RunConfig, int64) {
	t.Helper()
	sab := Sabotage{SkipUndoRecord: true, SkipLimit: 1}
	for _, wl := range []string{"Mp3d", "BerkeleyDB", "Raytrace", "Radiosity", "Cholesky"} {
		for _, vn := range []string{"BS_64", "BS"} {
			v, _ := VariantByName(vn)
			for seed := int64(1); seed <= 3; seed++ {
				rc := RunConfig{Workload: wl, Variant: v, Scale: testScale,
					Sabotage: sab, Checks: AllChecks(0)}
				r, _ := RunOne(rc, seed)
				if len(r.CheckFailures) > 0 {
					rc.Checks = CheckConfig{}
					return rc, seed
				}
			}
		}
	}
	t.Fatal("no (workload, variant, seed) made the single-shot sabotage fire — aborts with undo records have vanished?")
	return RunConfig{}, 0
}

// TestBisectLocalizesSabotage is the bisect canary: plant exactly one
// undo-walk corruption, hand BisectFailure only the unchecked failing
// cell, and require the reported first-bad cycle to be the exact cycle
// a full oracle run detects — reached in O(log snapshots) probes.
func TestBisectLocalizesSabotage(t *testing.T) {
	rc, seed := findSabotageCell(t)

	// Ground truth: the earliest violation cycle of a fully checked run.
	chk := rc
	chk.Checks = AllChecks(0)
	r, _ := RunOne(chk, seed)
	if len(r.CheckFailures) == 0 {
		t.Fatal("calibrated cell no longer fails under oracles")
	}
	want := earliestFailure(r.CheckFailures)

	br, err := BisectFailure(rc, seed, 2_000)
	if err != nil {
		t.Fatal(err)
	}
	if br.Clean {
		t.Fatalf("bisect called the sabotaged run clean: %+v", br)
	}
	if br.FirstBad != want.Cycle {
		t.Errorf("bisect found cycle %d, full oracle run detects at %d", br.FirstBad, want.Cycle)
	}
	if br.Failure == nil || br.Failure.Oracle != want.Oracle {
		t.Errorf("bisect failure %+v, want oracle %q", br.Failure, want.Oracle)
	}
	if br.FirstBad < br.Window[0] || br.FirstBad > br.Window[1] {
		t.Errorf("first bad cycle %d outside window [%d,%d]", br.FirstBad, br.Window[0], br.Window[1])
	}
	if br.FromCycle > br.FirstBad {
		t.Errorf("nearest snapshot %d is past the failing cycle %d", br.FromCycle, br.FirstBad)
	}
	// One reference probe plus a binary search: never a linear scan.
	if maxProbes := 2 + bits.Len(uint(br.Snapshots)); br.Probes > maxProbes {
		t.Errorf("%d probes over %d snapshots, want <= %d", br.Probes, br.Snapshots, maxProbes)
	}
	if br.Snapshots > 1 && br.FromCycle == 0 && br.Window[1] != br.SnapEvery {
		// With several snapshots the search should normally narrow the
		// window below the whole run; only defects before the first
		// boundary legitimately pin FromCycle to zero.
		if br.Window[1] > br.EndCycle/2 && br.FirstBad > br.Window[1]/2 {
			t.Errorf("window [%d,%d) did not narrow (end %d, %d snapshots)",
				br.Window[0], br.Window[1], br.EndCycle, br.Snapshots)
		}
	}
	t.Logf("bisect: %s", br)
}

// TestBisectLocalizesLateSabotage plants the single corruption deep in
// the run (sparing the first qualifying aborts via Sabotage.SkipAfter),
// so bisect must exercise the nearest-snapshot path: a snapshot taken
// before the defect still reproduces it, later ones run clean — and a
// snapshot restored past the defect must NOT re-fire the sabotage
// (its firing counters ride in the capture).
func TestBisectLocalizesLateSabotage(t *testing.T) {
	rc, seed := findSabotageCell(t)

	// Place the defect mid-run: spare ever fewer qualifying aborts
	// until it still fires.
	clean := rc
	clean.Sabotage = Sabotage{}
	cr, err := RunOne(clean, seed)
	if err != nil {
		t.Fatal(err)
	}
	var want CheckFailure
	placed := false
	for after := int(cr.Stats.Aborts) / 2; after >= 1; after /= 2 {
		late := rc
		late.Sabotage = Sabotage{SkipUndoRecord: true, SkipLimit: 1, SkipAfter: after}
		late.Checks = AllChecks(0)
		r, _ := RunOne(late, seed)
		if len(r.CheckFailures) == 0 {
			continue
		}
		want = earliestFailure(r.CheckFailures)
		rc.Sabotage = late.Sabotage
		placed = true
		break
	}
	if !placed {
		t.Skip("could not place a late defect (all qualifying aborts are early)")
	}

	br, err := BisectFailure(rc, seed, 2_000)
	if err != nil {
		t.Fatal(err)
	}
	if br.Clean {
		t.Fatalf("bisect called the sabotaged run clean: %+v", br)
	}
	if br.FirstBad != want.Cycle {
		t.Errorf("bisect found cycle %d, full oracle run detects at %d", br.FirstBad, want.Cycle)
	}
	if want.Cycle > 3*br.SnapEvery && br.FromCycle == 0 {
		t.Errorf("defect at cycle %d but bisect never found a failing snapshot (window [%d,%d), %d snapshots)",
			want.Cycle, br.Window[0], br.Window[1], br.Snapshots)
	}
	if br.FirstBad < br.Window[0] || br.FirstBad > br.Window[1] {
		t.Errorf("first bad cycle %d outside window [%d,%d]", br.FirstBad, br.Window[0], br.Window[1])
	}
	t.Logf("bisect: %s (defect planted after sparing %d aborts)", br, rc.Sabotage.SkipAfter)
}

// TestBisectCleanRun: a correct cell bisects to "clean" — the
// collection run, the snapshots, and the reference probe all agree
// there is nothing to localize.
func TestBisectCleanRun(t *testing.T) {
	bs, _ := VariantByName("BS")
	rc := RunConfig{Workload: "Cholesky", Variant: bs, Scale: testScale}
	br, err := BisectFailure(rc, 1, 5_000)
	if err != nil {
		t.Fatal(err)
	}
	if !br.Clean {
		t.Fatalf("clean cell did not bisect clean: %+v", br)
	}
	if br.FirstBad != 0 || br.Failure != nil {
		t.Fatalf("clean result carries a failure: %+v", br)
	}
}

// TestBisectRejectsUnbisectable pins the gate: hooks, the interpreter,
// and fault plans cannot be snapshotted, so bisect must refuse rather
// than return a bogus localization.
func TestBisectRejectsUnbisectable(t *testing.T) {
	bs, _ := VariantByName("BS")
	base := RunConfig{Workload: "Mp3d", Variant: bs, Scale: testScale}

	interp := base
	interp.Interpret = true
	if _, err := BisectFailure(interp, 1, 5_000); err == nil {
		t.Error("interpreted cell accepted")
	}
	faulty := base
	faulty.Fault = FaultPlan{NackDelayPct: 50, NackDelayMax: 64, Seed: 9}
	if _, err := BisectFailure(faulty, 1, 5_000); err == nil {
		t.Error("fault-plan cell accepted")
	}
	traced := base
	traced.Tracer = func(Cycle, string, string) {}
	if _, err := BisectFailure(traced, 1, 5_000); err == nil {
		t.Error("traced cell accepted")
	}
}

// TestSabotageUncacheableUnshareable: a sabotaged cell must never enter
// the result cache, the system pool, or a prefix-shared group under the
// correct cell's fingerprint.
func TestSabotageUncacheableUnshareable(t *testing.T) {
	bs, _ := VariantByName("BS")
	rc := RunConfig{Workload: "Mp3d", Variant: bs, Scale: testScale,
		Sabotage: Sabotage{SkipUndoRecord: true}}
	if Cacheable(rc) {
		t.Error("sabotaged cell is cacheable")
	}
	if Shareable(rc) {
		t.Error("sabotaged cell is prefix-shareable")
	}
	if _, err := Fingerprint(rc, 1); err == nil {
		t.Error("sabotaged cell got a fingerprint")
	}
}

// TestRunWithSnapshotsSelfCheck: capturing snapshots during a run must
// not perturb it (the result equals RunOne's bit for bit), and the
// restore-last-and-replay self-check must pass.
func TestRunWithSnapshotsSelfCheck(t *testing.T) {
	bs, _ := VariantByName("BS")
	rc := RunConfig{Workload: "Mp3d", Variant: bs, Scale: testScale}
	res, sc, err := RunWithSnapshots(rc, 1, 2_000)
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Identical {
		t.Fatalf("self-check not identical: %+v", sc)
	}
	if sc.Snapshots == 0 {
		t.Fatalf("no snapshots captured (run ended at %d; lower the stride)", sc.EndCycle)
	}
	if sc.ResumedFrom == 0 || sc.ResumedFrom >= sc.EndCycle {
		t.Fatalf("implausible resume point %d (end %d)", sc.ResumedFrom, sc.EndCycle)
	}
	plain, err := RunOne(rc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, plain) {
		t.Errorf("snapshot-collecting run differs from RunOne:\nsnap  %+v\nplain %+v", res, plain)
	}
}
