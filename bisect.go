package logtmse

import (
	"fmt"
	"reflect"

	"logtmse/internal/core"
	"logtmse/internal/snap"
	"logtmse/internal/sweep"
	"logtmse/internal/workload"
)

// Cycle-level bisect.
//
// A corrupted run usually announces itself long after the corruption: a
// final verification failure, a late oracle audit, a watchdog trip. The
// defect cycle is buried somewhere in a multi-million-cycle timeline,
// and replaying from zero with full instrumentation for every guess is
// how one burns an afternoon.
//
// BisectFailure localizes it in O(log n) partial replays. The failing
// run executes once more without any oracle attached — snapshots
// (internal/snap) don't coexist with hooks — capturing state every
// snapEvery cycles at quiescent boundaries. A probe then restores a
// snapshot onto a fresh machine and attaches a fresh checker: its
// shadow memory seeds from the restored state (damage that predates the
// snapshot is absorbed into the baseline and invisible), and threads
// caught mid-transaction hand it their open log frames, rewinding the
// shadow to committed state. The probe then runs the suffix and fails
// exactly when a violation occurs after the snapshot. Binary search
// over the snapshots finds the latest one that still reproduces the
// failure — the nearest snapshot — and the first violation of that
// probe's replay is the failing cycle.
//
// This works because sabotage (core.Sabotage) is machine state, not a
// hook: snapshots carry its firing counter, so a probe restored past
// the defect does not re-fire it. The fault injector, by contrast, is
// an external hook with its own schedule state — fault-plan runs
// cannot be bisected and are rejected up front.

// BisectResult reports where cycle-level bisect localized a failure.
type BisectResult struct {
	Workload string `json:"workload"`
	Variant  string `json:"variant"`
	Seed     int64  `json:"seed"`
	// SnapEvery is the requested snapshot stride (the effective stride
	// doubles when a very long run would exceed the snapshot budget).
	SnapEvery Cycle `json:"snap_every"`
	// EndCycle is the last cycle of the uninstrumented collection run.
	EndCycle Cycle `json:"end_cycle"`
	// Snapshots counts the snapshots collected.
	Snapshots int `json:"snapshots"`
	// Probes counts replays performed: the from-scratch reference plus
	// one partial replay per binary-search step.
	Probes int `json:"probes"`
	// Clean is true when the run completes, verifies, and no oracle
	// records a violation — nothing to bisect.
	Clean bool `json:"clean,omitempty"`
	// RunError is the collection run's own failure (verification error
	// or stuck threads), empty when it completed cleanly — an oracle
	// violation can precede any externally visible damage.
	RunError string `json:"run_error,omitempty"`
	// DetectedCycle is the first violation cycle of the from-scratch
	// reference probe (oracles attached from cycle 0).
	DetectedCycle Cycle `json:"detected_cycle"`
	// FirstBad is the first violation cycle replayed from the nearest
	// snapshot — the bisected failing cycle.
	FirstBad Cycle `json:"first_bad"`
	// FromCycle is the nearest snapshot's cycle: the latest boundary
	// from which the failure still reproduces. Restoring here replays
	// only FirstBad-FromCycle cycles to reach the defect.
	FromCycle Cycle `json:"from_cycle"`
	// Window brackets the replay: [FromCycle, the next snapshot's cycle
	// or EndCycle). Probes from boundaries at or past Window[1] run
	// clean.
	Window [2]Cycle `json:"window"`
	// Failure is the violation found at FirstBad.
	Failure *CheckFailure `json:"failure,omitempty"`
}

// String formats the headline localization.
func (r *BisectResult) String() string {
	if r.Clean {
		return fmt.Sprintf("%s/%s seed %d: clean (%d cycles, %d snapshots)",
			r.Workload, r.Variant, r.Seed, r.EndCycle, r.Snapshots)
	}
	return fmt.Sprintf("%s/%s seed %d: first bad cycle %d (window [%d,%d), %d snapshots, %d probes)",
		r.Workload, r.Variant, r.Seed, r.FirstBad, r.Window[0], r.Window[1], r.Snapshots, r.Probes)
}

// maxBisectSnaps bounds the snapshots held live during collection; past
// it, every other snapshot is dropped and the stride doubles (memory
// stays O(1) in run length, search stays O(log)).
const maxBisectSnaps = 512

// BisectFailure localizes the first failing cycle of a broken cell. The
// cell must be observer-free, compiled, fault-plan-free and on the
// single-chip signature-mode baseline (the snapshot layer's domain);
// rc.Checks selects the probing oracles (default: all, watchdog off).
// Typically rc.Sabotage arms the defect under study, but any
// deterministic in-engine defect an oracle can see is bisectable.
func BisectFailure(rc RunConfig, seed int64, snapEvery Cycle) (*BisectResult, error) {
	rc = rc.withDefaults()
	if rc.Tracer != nil || rc.Sink != nil || rc.Metrics != nil || rc.Prof != nil ||
		rc.Flight != nil || rc.Params.Sink != nil {
		return nil, fmt.Errorf("logtmse: bisect needs an observer-free cell (snapshots don't coexist with hooks)")
	}
	if rc.Interpret {
		return nil, fmt.Errorf("logtmse: bisect needs the compiled executor (an interpreted thread's position lives on a goroutine stack and cannot be snapshotted)")
	}
	if rc.Fault.Active() {
		return nil, fmt.Errorf("logtmse: the fault injector's schedule is hook state a snapshot cannot carry; bisect localizes sabotage- and engine-class defects")
	}
	if rc.WarmupCycles > 0 {
		return nil, fmt.Errorf("logtmse: bisect needs the unwarmed timeline (WarmupCycles resets statistics mid-run)")
	}
	if rc.Params.CD != CDSignature || rc.Params.Chips > 1 {
		return nil, fmt.Errorf("logtmse: bisect needs the single-chip signature-mode baseline")
	}
	if snapEvery <= 0 {
		snapEvery = 10_000
	}
	checks := rc.Checks
	if !checks.Any() {
		checks = AllChecks(0)
	}
	b, err := newBisector(rc, checks, seed)
	if err != nil {
		return nil, err
	}

	res := &BisectResult{
		Workload: rc.Workload, Variant: rc.Variant.Name, Seed: seed, SnapEvery: snapEvery,
	}
	err = sweep.Trap(func() error { return b.run(res, snapEvery) })
	if err != nil {
		return nil, err
	}
	return res, nil
}

// bisector holds everything needed to spawn the cell again and again.
type bisector struct {
	rc     RunConfig // normalized; Checks stripped (collection must be hook-free)
	checks CheckConfig
	seed   int64
	w      *workload.Workload
	p      core.Params
}

func newBisector(rc RunConfig, checks CheckConfig, seed int64) (*bisector, error) {
	w, ok := workload.ByName(rc.Workload)
	if !ok {
		return nil, fmt.Errorf("logtmse: unknown workload %q", rc.Workload)
	}
	p := *rc.Params
	p.Seed = seed
	p.Signature = rc.Variant.Sig
	rc.Checks = CheckConfig{}
	return &bisector{rc: rc, checks: checks, seed: seed, w: w, p: p}, nil
}

func (b *bisector) spawn() (*core.System, *workload.Instance, error) {
	sys, err := core.NewSystem(b.p)
	if err != nil {
		return nil, nil, err
	}
	inst, err := b.w.Spawn(sys, workload.Config{
		Mode:    b.rc.Variant.Mode,
		Threads: b.rc.Threads,
		Scale:   b.rc.Scale,
	})
	if err != nil {
		return nil, nil, err
	}
	sys.Sabotage = b.rc.Sabotage
	return sys, inst, nil
}

func (b *bisector) run(res *BisectResult, snapEvery Cycle) error {
	snaps, end, runErr, err := b.collect(snapEvery)
	if err != nil {
		return err
	}
	res.EndCycle = end
	res.Snapshots = len(snaps)
	if runErr != nil {
		res.RunError = runErr.Error()
	}

	// From-scratch reference probe: oracles from cycle 0 are the ground
	// truth the snapshot probes are searched against. No violation and a
	// clean collection run means there is nothing to bisect.
	rcRef := b.rc
	rcRef.Checks = b.checks
	rcRef.Cache = nil
	ref, refErr := runOneSafe(rcRef, b.seed)
	res.Probes++
	if len(ref.CheckFailures) == 0 {
		if runErr == nil && refErr == nil {
			res.Clean = true
			return nil
		}
		return fmt.Errorf("logtmse: %s/%s seed %d fails but no oracle records a violation — bisect has no probe signal (run error: %v / %v)",
			b.rc.Workload, b.rc.Variant.Name, b.seed, runErr, refErr)
	}
	first := earliestFailure(ref.CheckFailures)
	res.DetectedCycle = first.Cycle

	if len(snaps) == 0 {
		// The run ended before the first boundary (or none was
		// quiescent): the reference probe is the whole answer.
		res.FirstBad = first.Cycle
		res.Window = [2]Cycle{0, end}
		res.Failure = &first
		return nil
	}

	// Binary search for the latest snapshot whose probe still fails.
	// Invariant: lo fails (lo == -1 is the reference probe), hi is clean
	// (hi == len(snaps) is the empty suffix past the last violation).
	outs := make(map[int]probeOut)
	fails := func(i int) (bool, error) {
		out, ok := outs[i]
		if !ok {
			var err error
			out, err = b.probe(snaps[i])
			if err != nil {
				return false, err
			}
			outs[i] = out
			res.Probes++
		}
		return len(out.failures) > 0 || out.stuck, nil
	}
	lo, hi := -1, len(snaps)
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		bad, err := fails(mid)
		if err != nil {
			return err
		}
		if bad {
			lo = mid
		} else {
			hi = mid
		}
	}

	if lo == -1 {
		// Every snapshot probe is clean: the defect struck before the
		// first boundary, and only the reference probe sees it.
		res.FirstBad = first.Cycle
		res.FromCycle = 0
		res.Window = [2]Cycle{0, snaps[0].Cycle}
		res.Failure = &first
		return nil
	}
	out := outs[lo]
	res.FromCycle = snaps[lo].Cycle
	res.Window = [2]Cycle{snaps[lo].Cycle, end}
	if hi < len(snaps) {
		res.Window[1] = snaps[hi].Cycle
	}
	if len(out.failures) > 0 {
		f := earliestFailure(out.failures)
		res.FirstBad = f.Cycle
		res.Failure = &f
	} else {
		// Stuck probe with no recorded violation (no watchdog armed):
		// the hang is only bracketed, not pinned to a cycle.
		res.FirstBad = res.Window[1]
	}
	return nil
}

// collect replays the cell without hooks, capturing a snapshot every
// snapEvery cycles. It returns the snapshots, the end cycle, and the
// run's own completion error (nil when it finished and verified).
func (b *bisector) collect(snapEvery Cycle) ([]*snap.Snapshot, Cycle, error, error) {
	sys, inst, err := b.spawn()
	if err != nil {
		return nil, 0, nil, err
	}
	var snaps []*snap.Snapshot
	every := snapEvery
	for next := every; b.rc.MaxCycles == 0 || next < b.rc.MaxCycles; next += every {
		sys.RunUntil(next)
		if sys.AllDone() {
			break
		}
		// A busy cell is rarely capturable at the exact boundary cycle
		// (strong messages in flight), so hunt forward in sub-steps for
		// a quiescent point before writing this stride off. Capture is
		// read-only and RunUntil only advances the same deterministic
		// trajectory, so the hunt perturbs nothing. Open transactions
		// are fine: the probe's checker adopts their log frames.
		step := every / 16
		for at := next; ; at += step {
			if s, cerr := snap.Capture(sys, inst); cerr == nil {
				snaps = append(snaps, s)
				if len(snaps) >= maxBisectSnaps {
					kept := snaps[:0]
					for i := 0; i < len(snaps); i += 2 {
						kept = append(kept, snaps[i])
					}
					for i := len(kept); i < len(snaps); i++ {
						snaps[i] = nil
					}
					snaps = kept
					every *= 2
				}
				break
			}
			if step == 0 || at+step >= next+every/2 {
				break
			}
			sys.RunUntil(at + step)
			if sys.AllDone() {
				break
			}
		}
		if sys.AllDone() {
			break
		}
	}
	var end Cycle
	if b.rc.MaxCycles > 0 {
		end = sys.RunUntil(b.rc.MaxCycles)
	} else {
		end = sys.Run()
	}
	var runErr error
	if !sys.AllDone() {
		runErr = fmt.Errorf("threads stuck: %v", sys.Stuck())
	} else if verr := inst.Verify(sys); verr != nil {
		runErr = verr
	}
	return snaps, end, runErr, nil
}

type probeOut struct {
	failures []CheckFailure
	stuck    bool
}

// probe restores one snapshot onto a fresh machine, attaches a fresh
// checker (shadow memory seeded from the restored state — damage before
// the snapshot is baseline, not violation), and replays the suffix.
func (b *bisector) probe(s *snap.Snapshot) (probeOut, error) {
	sys, inst, err := b.spawn()
	if err != nil {
		return probeOut{}, err
	}
	if err := snap.Restore(sys, inst, s); err != nil {
		return probeOut{}, err
	}
	chk := sys.AttachChecker(b.checks)
	if b.rc.MaxCycles > 0 {
		sys.RunUntil(b.rc.MaxCycles)
	} else {
		sys.Run()
	}
	return probeOut{failures: chk.Failures(), stuck: !sys.AllDone()}, nil
}

// earliestFailure returns the violation with the smallest cycle.
func earliestFailure(fs []CheckFailure) CheckFailure {
	first := fs[0]
	for _, f := range fs[1:] {
		if f.Cycle < first.Cycle {
			first = f
		}
	}
	return first
}

// SnapSelfCheck reports a snapshot round-trip self-check (see
// RunWithSnapshots; surfaced by logtmsim -snap-every).
type SnapSelfCheck struct {
	// Snapshots counts captures taken during the run.
	Snapshots int `json:"snapshots"`
	// ResumedFrom is the cycle of the last snapshot, which the check
	// restores and replays (0 when the run ended before the first
	// boundary — vacuously identical).
	ResumedFrom Cycle `json:"resumed_from"`
	// EndCycle is the run's final cycle.
	EndCycle Cycle `json:"end_cycle"`
	// Identical is true when the resumed replay finished at the same
	// cycle with bit-identical Stats and a passing verification.
	Identical bool `json:"identical"`
}

// RunWithSnapshots runs one cell capturing a snapshot every `every`
// cycles, then proves the snapshot layer on the spot: the last capture
// is restored onto a freshly spawned machine and replayed to
// completion, and the replay must finish at the same cycle with
// bit-identical Stats. The cell must satisfy the same constraints as
// BisectFailure (observer-free, compiled, no fault plan, single-chip
// signature baseline); the returned RunResult is the original run's,
// bit-identical to RunOne.
func RunWithSnapshots(rc RunConfig, seed int64, every Cycle) (RunResult, SnapSelfCheck, error) {
	rc = rc.withDefaults()
	var sc SnapSelfCheck
	if every <= 0 {
		return RunResult{}, sc, fmt.Errorf("logtmse: snapshot stride must be positive")
	}
	if rc.Checks.Any() {
		return RunResult{}, sc, fmt.Errorf("logtmse: snapshots don't coexist with oracles (use BisectFailure to probe a checked run)")
	}
	if rc.Tracer != nil || rc.Sink != nil || rc.Metrics != nil || rc.Prof != nil ||
		rc.Flight != nil || rc.Params.Sink != nil {
		return RunResult{}, sc, fmt.Errorf("logtmse: snapshots need an observer-free cell")
	}
	if rc.Interpret {
		return RunResult{}, sc, fmt.Errorf("logtmse: snapshots need the compiled executor")
	}
	if rc.Fault.Active() {
		return RunResult{}, sc, fmt.Errorf("logtmse: the fault injector is not snapshot-capable")
	}
	if rc.WarmupCycles > 0 {
		return RunResult{}, sc, fmt.Errorf("logtmse: snapshots need the unwarmed timeline")
	}
	if rc.Params.CD != CDSignature || rc.Params.Chips > 1 {
		return RunResult{}, sc, fmt.Errorf("logtmse: snapshots need the single-chip signature-mode baseline")
	}
	b, err := newBisector(rc, CheckConfig{}, seed)
	if err != nil {
		return RunResult{}, sc, err
	}

	var res RunResult
	err = sweep.Trap(func() error {
		sys, inst, err := b.spawn()
		if err != nil {
			return err
		}
		var last *snap.Snapshot
		for next := every; rc.MaxCycles == 0 || next < rc.MaxCycles; next += every {
			sys.RunUntil(next)
			if sys.AllDone() {
				break
			}
			if s, cerr := snap.Capture(sys, inst); cerr == nil {
				last = s
				sc.Snapshots++
			}
		}
		var end Cycle
		if rc.MaxCycles > 0 {
			end = sys.RunUntil(rc.MaxCycles)
		} else {
			end = sys.Run()
		}
		sc.EndCycle = end
		res, err = finishBisectRun(rc, seed, sys, inst, end)
		if err != nil {
			return err
		}
		if last == nil {
			sc.Identical = true // nothing captured, nothing to disprove
			return nil
		}
		sc.ResumedFrom = last.Cycle

		sys2, inst2, err := b.spawn()
		if err != nil {
			return err
		}
		if err := snap.Restore(sys2, inst2, last); err != nil {
			return err
		}
		end2 := sys2.Run()
		res2, err := finishBisectRun(rc, seed, sys2, inst2, end2)
		if err != nil {
			return fmt.Errorf("snapshot replay from cycle %d: %w", last.Cycle, err)
		}
		if end2 != end || !reflect.DeepEqual(res2.Stats, res.Stats) {
			return fmt.Errorf("snapshot replay from cycle %d diverged: end %d vs %d", last.Cycle, end2, end)
		}
		sc.Identical = true
		return nil
	})
	if err != nil {
		return res, sc, err
	}
	return res, sc, nil
}

// finishBisectRun is the run postlude for the snapshot-capable subset:
// completion check, verification, result assembly. Unlike
// finishSharedRun it never pools the machine — sabotage may have run
// here.
func finishBisectRun(rc RunConfig, seed int64, sys *core.System, inst *workload.Instance, end Cycle) (RunResult, error) {
	res := RunResult{Seed: seed}
	if !sys.AllDone() {
		return res, fmt.Errorf("logtmse: %s/%s seed %d: threads stuck: %v\n%s",
			rc.Workload, rc.Variant.Name, seed, sys.Stuck(), sys.Diagnose())
	}
	if err := inst.Verify(sys); err != nil {
		return res, fmt.Errorf("logtmse: %s/%s seed %d: %w", rc.Workload, rc.Variant.Name, seed, err)
	}
	st := sys.Stats()
	if st.WorkUnits == 0 {
		return res, fmt.Errorf("logtmse: %s produced no work units", rc.Workload)
	}
	res.Cycles = end
	res.WorkUnits = st.WorkUnits
	res.CyclesPerUnit = float64(end) / float64(st.WorkUnits)
	res.Stats = st
	return res, nil
}
