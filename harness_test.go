package logtmse

import (
	"context"
	"strings"
	"testing"

	"logtmse/internal/workload"
)

const testScale = 0.03

func TestFigure4VariantsOrder(t *testing.T) {
	vs := Figure4Variants()
	want := []string{"Lock", "Perfect", "BS", "CBS", "DBS", "BS_64"}
	if len(vs) != len(want) {
		t.Fatalf("got %d variants", len(vs))
	}
	for i, n := range want {
		if vs[i].Name != n {
			t.Errorf("variant %d = %s, want %s", i, vs[i].Name, n)
		}
	}
	if vs[0].Mode != workload.Lock {
		t.Errorf("Lock variant has TM mode")
	}
	for _, v := range vs[1:] {
		if v.Mode != workload.TM {
			t.Errorf("%s should be TM mode", v.Name)
		}
	}
	if vs[5].Sig.Bits != 64 {
		t.Errorf("BS_64 bits = %d", vs[5].Sig.Bits)
	}
}

func TestVariantByName(t *testing.T) {
	v, ok := VariantByName("DBS")
	if !ok || v.Sig.Bits != 2048 {
		t.Errorf("DBS lookup failed: %+v %v", v, ok)
	}
	if _, ok := VariantByName("nope"); ok {
		t.Errorf("unknown variant accepted")
	}
}

func TestWorkloadsExposed(t *testing.T) {
	if len(Workloads()) != 5 {
		t.Errorf("Workloads() = %d entries", len(Workloads()))
	}
	w, ok := WorkloadByName("Mp3d")
	if !ok || w.Name != "Mp3d" {
		t.Errorf("WorkloadByName failed")
	}
}

func TestRunOneUnknownWorkload(t *testing.T) {
	v, _ := VariantByName("Perfect")
	if _, err := RunOne(RunConfig{Workload: "nope", Variant: v}, 1); err == nil {
		t.Errorf("unknown workload accepted")
	}
}

func TestRunOneBasic(t *testing.T) {
	v, _ := VariantByName("Perfect")
	r, err := RunOne(RunConfig{Workload: "Cholesky", Variant: v, Scale: testScale}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles == 0 || r.WorkUnits == 0 || r.CyclesPerUnit <= 0 {
		t.Errorf("degenerate result: %+v", r)
	}
	if r.Stats.Commits == 0 {
		t.Errorf("no commits in a TM run")
	}
}

func TestRunAggregatesSeeds(t *testing.T) {
	v, _ := VariantByName("Perfect")
	agg, err := Run(RunConfig{
		Workload: "Mp3d", Variant: v, Scale: testScale, Seeds: []int64{1, 2, 3, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.Runs) != 4 || agg.CPU.N() != 4 {
		t.Fatalf("runs = %d", len(agg.Runs))
	}
	if agg.Mean() <= 0 {
		t.Errorf("mean = %f", agg.Mean())
	}
	if agg.CI95() < 0 {
		t.Errorf("negative CI")
	}
	tot := agg.TotalStats()
	var sum uint64
	for _, r := range agg.Runs {
		sum += r.Stats.Commits
	}
	if tot.Commits != sum {
		t.Errorf("TotalStats commits = %d, want %d", tot.Commits, sum)
	}
}

func TestRunDefaultsApplied(t *testing.T) {
	v, _ := VariantByName("Perfect")
	rc := RunConfig{Workload: "Cholesky", Variant: v, Scale: testScale}
	agg, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.Runs) != 3 {
		t.Errorf("default seeds = %d runs, want 3", len(agg.Runs))
	}
}

func TestRunResultsDeterministicPerSeed(t *testing.T) {
	v, _ := VariantByName("BS")
	r1, err := RunOne(RunConfig{Workload: "Radiosity", Variant: v, Scale: testScale}, 7)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunOne(RunConfig{Workload: "Radiosity", Variant: v, Scale: testScale}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.Stats.Commits != r2.Stats.Commits ||
		r1.Stats.Stalls != r2.Stats.Stalls {
		t.Errorf("same seed diverged: %+v vs %+v", r1, r2)
	}
}

func TestFigure4RowSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full row is slow")
	}
	p := DefaultParams()
	row, err := Figure4(context.Background(), "Mp3d", testScale, []int64{1, 2}, &p, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if row.Speedup["Lock"] != 1.0 {
		t.Errorf("Lock speedup = %f, must be 1 by construction", row.Speedup["Lock"])
	}
	for _, v := range Figure4Variants() {
		if row.Speedup[v.Name] <= 0 {
			t.Errorf("%s speedup = %f", v.Name, row.Speedup[v.Name])
		}
	}
}

// The headline result at miniature scale: TM variants must not lose badly
// to locks on the TM-friendly workloads, and every variant must verify.
func TestAllVariantsVerifyOnAllWorkloads(t *testing.T) {
	for _, w := range Workloads() {
		for _, v := range Figure4Variants() {
			w, v := w, v
			t.Run(w.Name+"/"+v.Name, func(t *testing.T) {
				t.Parallel()
				if _, err := RunOne(RunConfig{Workload: w.Name, Variant: v, Scale: testScale}, 3); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestPublicTypeAliases(t *testing.T) {
	// The facade must expose a usable system without internal imports.
	p := DefaultParams()
	p.Cores = 2
	p.GridW, p.GridH = 2, 1
	p.L2Banks = 2
	sys, err := NewSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	pt := sys.NewPageTable(ASID(1))
	var got uint64
	b := NewBarrier(2)
	for i := 0; i < 2; i++ {
		i := i
		if _, err := sys.SpawnOn(i, 0, "t", 1, pt, func(a *API) {
			a.Transaction(func() { a.FetchAdd(VAddr(0x40), 1) })
			a.Barrier(b)
			if i == 0 {
				got = a.Load(VAddr(0x40))
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	sys.Run()
	if got != 2 {
		t.Errorf("counter = %d", got)
	}
}

func TestSnoopProtocolEndToEnd(t *testing.T) {
	p := DefaultParams()
	p.Protocol = ProtocolSnoop
	v, _ := VariantByName("Perfect")
	r, err := RunOne(RunConfig{Workload: "Mp3d", Variant: v, Scale: testScale, Params: &p}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Coh.Broadcasts == 0 {
		t.Errorf("snoop run produced no broadcasts")
	}
}

func TestVariantNameFormatting(t *testing.T) {
	for _, v := range Figure4Variants() {
		if strings.TrimSpace(v.Name) == "" {
			t.Errorf("empty variant name")
		}
	}
}

func TestH3VariantEndToEnd(t *testing.T) {
	// The H3 extension signature must run every workload correctly.
	v := Variant{Name: "H3_1024", Mode: 0, Sig: SigConfig{Kind: SigH3, Bits: 1024}}
	for _, wl := range []string{"BerkeleyDB", "Mp3d"} {
		if _, err := RunOne(RunConfig{Workload: wl, Variant: v, Scale: testScale}, 2); err != nil {
			t.Errorf("%s under H3: %v", wl, err)
		}
	}
}

func TestWarmupMeasurement(t *testing.T) {
	v, _ := VariantByName("Perfect")
	full, err := RunOne(RunConfig{Workload: "Mp3d", Variant: v, Scale: testScale}, 1)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := RunOne(RunConfig{
		Workload: "Mp3d", Variant: v, Scale: testScale,
		WarmupCycles: full.Cycles / 4,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cycles >= full.Cycles {
		t.Errorf("measured window (%d) not smaller than full run (%d)", warm.Cycles, full.Cycles)
	}
	if warm.Stats.Commits >= full.Stats.Commits {
		t.Errorf("warm-up commits not excluded: %d vs %d", warm.Stats.Commits, full.Stats.Commits)
	}
	if warm.WorkUnits == 0 {
		t.Errorf("no work units in the measurement window")
	}
}
