package logtmse

// Benchmark harness: one benchmark family per table/figure of the paper's
// evaluation. Each iteration is a complete simulation run (seeded by the
// iteration index, matching the paper's pseudo-random perturbation); the
// interesting results are exported with b.ReportMetric, so
// `go test -bench . -benchmem` regenerates the evaluation at reduced
// scale. The cmd/ tools run the same cells at full scale.

import (
	"context"
	"fmt"
	"testing"

	"logtmse/internal/core"
	"logtmse/internal/osm"
	"logtmse/internal/sig"
	"logtmse/internal/snap"
	"logtmse/internal/workload"
)

// benchScale keeps a single benchmark iteration around tens of
// milliseconds; cmd/figure4 etc. run at scale 1.0.
const benchScale = 0.05

func benchRun(b *testing.B, wl string, v Variant, scale float64) (last RunResult) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := RunOne(RunConfig{Workload: wl, Variant: v, Scale: scale}, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	return last
}

// BenchmarkTable1Config measures machine construction with the paper's
// Table 1 parameters (and asserts they are the paper's).
func BenchmarkTable1Config(b *testing.B) {
	p := DefaultParams()
	if p.Cores != 16 || p.ThreadsPerCore != 2 || p.L1Bytes != 32*1024 ||
		p.L2Bytes != 8*1024*1024 || p.MemLat != 500 || p.L2Lat != 34 {
		b.Fatalf("Table 1 parameters drifted: %+v", p)
	}
	for i := 0; i < b.N; i++ {
		if _, err := NewSystem(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 regenerates Table 2's per-benchmark transaction counts
// and read/write-set sizes (perfect signatures).
func BenchmarkTable2(b *testing.B) {
	perfect, _ := VariantByName("Perfect")
	for _, w := range Workloads() {
		b.Run(w.Name, func(b *testing.B) {
			r := benchRun(b, w.Name, perfect, benchScale)
			st := r.Stats
			b.ReportMetric(float64(st.Commits), "txns")
			b.ReportMetric(st.ReadSetAvg(), "read-avg")
			b.ReportMetric(float64(st.ReadSetMax), "read-max")
			b.ReportMetric(st.WriteSetAvg(), "write-avg")
			b.ReportMetric(float64(st.WriteSetMax), "write-max")
		})
	}
}

// BenchmarkFigure4 regenerates Figure 4: cycles-per-work-unit for every
// benchmark x variant cell; the speedup is the Lock cell's metric divided
// by the variant's.
func BenchmarkFigure4(b *testing.B) {
	for _, w := range Workloads() {
		for _, v := range Figure4Variants() {
			b.Run(w.Name+"/"+v.Name, func(b *testing.B) {
				r := benchRun(b, w.Name, v, benchScale)
				b.ReportMetric(r.CyclesPerUnit, "cycles/unit")
				b.ReportMetric(float64(r.Stats.Aborts), "aborts")
			})
		}
	}
}

// BenchmarkTable3 regenerates Table 3: conflict-detection quality versus
// signature implementation and size, for Raytrace and BerkeleyDB.
func BenchmarkTable3(b *testing.B) {
	cells := []struct {
		label string
		sc    sig.Config
	}{
		{"Perfect", sig.Config{Kind: sig.KindPerfect}},
		{"BS_2048", sig.Config{Kind: sig.KindBitSelect, Bits: 2048}},
		{"CBS_2048", sig.Config{Kind: sig.KindCoarseBitSelect, Bits: 2048}},
		{"DBS_2048", sig.Config{Kind: sig.KindDoubleBitSelect, Bits: 2048}},
		{"BS_64", sig.Config{Kind: sig.KindBitSelect, Bits: 64}},
		{"CBS_64", sig.Config{Kind: sig.KindCoarseBitSelect, Bits: 64}},
		{"DBS_64", sig.Config{Kind: sig.KindDoubleBitSelect, Bits: 64}},
	}
	for _, wl := range []string{"Raytrace", "BerkeleyDB"} {
		for _, c := range cells {
			b.Run(wl+"/"+c.label, func(b *testing.B) {
				v := Variant{Name: c.label, Mode: workload.TM, Sig: c.sc}
				r := benchRun(b, wl, v, benchScale)
				st := r.Stats
				b.ReportMetric(float64(st.Commits), "txns")
				b.ReportMetric(float64(st.Aborts), "aborts")
				b.ReportMetric(float64(st.Stalls), "stalls")
				b.ReportMetric(st.FPEpisodePct(), "falsepos%")
			})
		}
	}
}

// BenchmarkVictimization regenerates Result 4: transactional blocks
// victimized from the caches, per benchmark.
func BenchmarkVictimization(b *testing.B) {
	perfect, _ := VariantByName("Perfect")
	for _, w := range Workloads() {
		b.Run(w.Name, func(b *testing.B) {
			// Raytrace's victimization comes from its rare giant read
			// sets; give it a slightly larger slice so they occur.
			scale := benchScale
			if w.Name == "Raytrace" {
				scale = 0.1
			}
			r := benchRun(b, w.Name, perfect, scale)
			st := r.Stats
			b.ReportMetric(float64(st.Coh.L1TxVictims), "L1-victims")
			b.ReportMetric(float64(st.Coh.L2TxVictims), "L2-victims")
			b.ReportMetric(float64(st.Coh.StickyEvicts), "sticky")
		})
	}
}

// BenchmarkTable4Events regenerates the Table 4 virtualization-event
// microbenchmark: an oversubscribed run under the OS scheduler with
// eager mid-transaction preemption, measuring the software events
// LogTM-SE needs after virtualization (context switches, summary
// installs, summary conflicts, commit traps) while cache misses and
// commits stay hardware-simple.
func BenchmarkTable4Events(b *testing.B) {
	var switches, installs, conflicts float64
	for i := 0; i < b.N; i++ {
		p := DefaultParams()
		p.Cores = 4 // 8 contexts, 16 threads below
		p.GridW, p.GridH = 2, 2
		p.L2Banks = 4
		p.Seed = int64(i + 1)
		sys, err := core.NewSystem(p)
		if err != nil {
			b.Fatal(err)
		}
		sched := osm.New(sys, 500)
		sched.DeferInTxFactor = 0 // eager: context switches hit transactions
		proc := sched.NewProcess("P")
		counter := VAddr(0x9000)
		for t := 0; t < 16; t++ {
			sched.Spawn(proc, "w", func(a *API) {
				for r := 0; r < 10; r++ {
					a.Transaction(func() {
						v := a.Load(counter)
						a.Compute(200)
						a.Store(counter, v+1)
					})
					a.Compute(100)
				}
			})
		}
		sys.Run()
		if !sys.AllDone() {
			b.Fatalf("stuck: %v", sys.Stuck())
		}
		if got := sys.Mem.ReadWord(proc.PT.Translate(counter)); got != 160 {
			b.Fatalf("counter = %d, want 160", got)
		}
		ost := sched.Stats()
		switches = float64(ost.ContextSwitches)
		installs = float64(ost.SummaryInstalls)
		conflicts = float64(sys.Stats().SummaryConflicts)
	}
	b.ReportMetric(switches, "ctx-switches")
	b.ReportMetric(installs, "summary-installs")
	b.ReportMetric(conflicts, "summary-conflicts")
}

// BenchmarkSnoopVsDirectory is the §7 ablation: the broadcast snooping
// CMP versus the directory baseline.
func BenchmarkSnoopVsDirectory(b *testing.B) {
	perfect, _ := VariantByName("Perfect")
	for _, proto := range []struct {
		name string
		set  func(*Params)
	}{
		{"directory", func(p *Params) { p.Protocol = ProtocolDirectory }},
		{"snoop", func(p *Params) { p.Protocol = ProtocolSnoop }},
	} {
		b.Run(proto.name, func(b *testing.B) {
			p := DefaultParams()
			proto.set(&p)
			var last RunResult
			for i := 0; i < b.N; i++ {
				r, err := RunOne(RunConfig{
					Workload: "Raytrace", Variant: perfect, Scale: benchScale, Params: &p,
				}, int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.ReportMetric(last.CyclesPerUnit, "cycles/unit")
			b.ReportMetric(float64(last.Stats.Coh.Broadcasts), "broadcasts")
		})
	}
}

// BenchmarkSignatureSweep sweeps bit-select sizes (the DESIGN.md ablation
// behind Result 3: small signatures suffice because read/write sets are
// small).
func BenchmarkSignatureSweep(b *testing.B) {
	for _, bits := range []int{64, 256, 1024, 2048, 8192} {
		b.Run(fmt.Sprintf("BS_%d", bits), func(b *testing.B) {
			v := Variant{
				Name: fmt.Sprintf("BS_%d", bits),
				Mode: workload.TM,
				Sig:  sig.Config{Kind: sig.KindBitSelect, Bits: bits},
			}
			r := benchRun(b, "Raytrace", v, benchScale)
			b.ReportMetric(r.CyclesPerUnit, "cycles/unit")
			b.ReportMetric(r.Stats.FPEpisodePct(), "falsepos%")
		})
	}
}

// BenchmarkMultiChip is the §7 multiple-CMP ablation: the same 16 cores
// as one CMP versus four CMPs behind a memory directory.
func BenchmarkMultiChip(b *testing.B) {
	perfect, _ := VariantByName("Perfect")
	for _, chips := range []int{1, 4} {
		b.Run(fmt.Sprintf("chips-%d", chips), func(b *testing.B) {
			p := DefaultParams()
			if chips > 1 {
				p.Chips = chips
				p.GridW, p.GridH = 2, 2
				p.InterChipLat = 50
			}
			var last RunResult
			for i := 0; i < b.N; i++ {
				r, err := RunOne(RunConfig{
					Workload: "Mp3d", Variant: perfect, Scale: benchScale, Params: &p,
				}, int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.ReportMetric(last.CyclesPerUnit, "cycles/unit")
			b.ReportMetric(float64(last.Stats.Coh.InterChipMsgs), "interchip-msgs")
		})
	}
}

// BenchmarkContentionPolicies compares the conflict-resolution policies
// (DESIGN.md design-choice ablation; the paper's base policy is
// stall-abort).
func BenchmarkContentionPolicies(b *testing.B) {
	perfect, _ := VariantByName("Perfect")
	for _, pol := range []Resolution{ResolveStallAbort, ResolveRequesterAborts, ResolveYoungerAborts} {
		b.Run(pol.String(), func(b *testing.B) {
			p := DefaultParams()
			p.Resolution = pol
			var last RunResult
			for i := 0; i < b.N; i++ {
				r, err := RunOne(RunConfig{
					Workload: "BerkeleyDB", Variant: perfect, Scale: benchScale, Params: &p,
				}, int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.ReportMetric(last.CyclesPerUnit, "cycles/unit")
			b.ReportMetric(float64(last.Stats.Aborts), "aborts")
		})
	}
}

// BenchmarkSigBackups measures the §3.2 backup-signature optimization on
// the nesting microworkload.
func BenchmarkSigBackups(b *testing.B) {
	v := Variant{Name: "BS", Mode: workload.TM, Sig: sig.Config{Kind: sig.KindBitSelect, Bits: 2048}}
	for _, backups := range []int{0, 4} {
		b.Run(fmt.Sprintf("backups-%d", backups), func(b *testing.B) {
			p := DefaultParams()
			p.SigBackupCopies = backups
			var last RunResult
			for i := 0; i < b.N; i++ {
				r, err := RunOne(RunConfig{
					Workload: "NestedMicro", Variant: v, Scale: benchScale, Params: &p,
				}, int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.ReportMetric(last.CyclesPerUnit, "cycles/unit")
		})
	}
}

// BenchmarkLogTMvsSE compares the original LogTM baseline (R/W cache
// bits, flash clear, overflow flag) against LogTM-SE — the paper's intro
// claim is that LogTM-SE performs comparably while being virtualizable.
func BenchmarkLogTMvsSE(b *testing.B) {
	perfect, _ := VariantByName("Perfect")
	for _, cd := range []ConflictDetection{CDSignature, CDCacheBits} {
		b.Run(cd.String(), func(b *testing.B) {
			p := DefaultParams()
			p.CD = cd
			var last RunResult
			for i := 0; i < b.N; i++ {
				r, err := RunOne(RunConfig{
					Workload: "BerkeleyDB", Variant: perfect, Scale: benchScale, Params: &p,
				}, int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.ReportMetric(last.CyclesPerUnit, "cycles/unit")
			b.ReportMetric(float64(last.Stats.FlashClears), "flash-clears")
			b.ReportMetric(float64(last.Stats.OverflowNACKs), "overflow-nacks")
		})
	}
}

// BenchmarkObsOverhead is the observability overhead guard: the same
// cell with no sink (the seed baseline), with a discarding sink, and
// with a discarding sink plus metrics. The bare run must stay within
// noise of the seed, and the cycles/unit metric must be identical across
// all three — instrumentation observes the run, it never changes it.
func BenchmarkObsOverhead(b *testing.B) {
	perfect, _ := VariantByName("Perfect")
	cells := []struct {
		name string
		rc   func() RunConfig
	}{
		{"bare", func() RunConfig {
			return RunConfig{Workload: "BerkeleyDB", Variant: perfect, Scale: benchScale}
		}},
		{"sink", func() RunConfig {
			return RunConfig{Workload: "BerkeleyDB", Variant: perfect, Scale: benchScale,
				Sink: DiscardSink{}}
		}},
		{"sink+metrics", func() RunConfig {
			return RunConfig{Workload: "BerkeleyDB", Variant: perfect, Scale: benchScale,
				Sink: DiscardSink{}, Metrics: NewCoreMetrics(NewRegistry())}
		}},
	}
	var baseline float64
	for _, c := range cells {
		b.Run(c.name, func(b *testing.B) {
			var last RunResult
			for i := 0; i < b.N; i++ {
				r, err := RunOne(c.rc(), 1)
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.ReportMetric(last.CyclesPerUnit, "cycles/unit")
			if c.name == "bare" {
				baseline = last.CyclesPerUnit
			} else if baseline != 0 && last.CyclesPerUnit != baseline {
				b.Fatalf("instrumentation changed simulated behavior: %f vs %f cycles/unit",
					last.CyclesPerUnit, baseline)
			}
		})
	}
}

// BenchmarkSweepCell is the end-to-end sweep-throughput benchmark: one
// complete experiment cell per iteration, under the three execution
// strategies a sweep command composes. "cold" constructs every System
// from scratch (pooling off); "pooled" reuses a Reset() machine from the
// pool; "cached" serves the repeat from the in-memory result cache.
// benchdiff reads the pooled/cold and cached/cold ratios from these.
func BenchmarkSweepCell(b *testing.B) {
	perfect, _ := VariantByName("Perfect")
	rc := RunConfig{Workload: "BerkeleyDB", Variant: perfect, Scale: benchScale}
	run := func(b *testing.B, rc RunConfig) {
		var last RunResult
		for i := 0; i < b.N; i++ {
			r, err := RunOne(rc, 1)
			if err != nil {
				b.Fatal(err)
			}
			last = r
		}
		b.ReportMetric(last.CyclesPerUnit, "cycles/unit")
	}
	b.Run("cold", func(b *testing.B) {
		prev := SetSystemPooling(false)
		defer SetSystemPooling(prev)
		drainSystemPool()
		run(b, rc)
	})
	b.Run("pooled", func(b *testing.B) {
		prev := SetSystemPooling(true)
		defer func() {
			drainSystemPool()
			SetSystemPooling(prev)
		}()
		if _, err := RunOne(rc, 1); err != nil { // prime the pool
			b.Fatal(err)
		}
		b.ResetTimer()
		run(b, rc)
	})
	b.Run("cached", func(b *testing.B) {
		cached := rc
		cached.Cache = NewResultCache("", 0)
		if _, err := RunOne(cached, 1); err != nil { // warm the cache
			b.Fatal(err)
		}
		b.ResetTimer()
		run(b, cached)
	})
}

// BenchmarkSignatureOps microbenchmarks the signature hardware itself:
// insert+test throughput per implementation (a pure data-structure
// benchmark, independent of the simulator).
func BenchmarkSignatureOps(b *testing.B) {
	for _, cfg := range []sig.Config{
		{Kind: sig.KindPerfect},
		{Kind: sig.KindBitSelect, Bits: 2048},
		{Kind: sig.KindCoarseBitSelect, Bits: 2048},
		{Kind: sig.KindDoubleBitSelect, Bits: 2048},
	} {
		b.Run(cfg.String(), func(b *testing.B) {
			s := sig.MustSignature(cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a := PAddr(uint64(i) * 64)
				s.Insert(sig.Read, a)
				if !s.Conflict(sig.Write, a) {
					b.Fatal("false negative")
				}
				if i%4096 == 0 {
					s.ClearAll()
				}
			}
		})
	}
}

// BenchmarkSnapshotRestore measures the snapshot layer itself: capture
// of a mid-run machine, and restore of that capture onto an already-
// spawned machine (the fork fast path — spawn cost is excluded, since a
// sweep reuses pooled machines as fork targets).
func BenchmarkSnapshotRestore(b *testing.B) {
	p := DefaultParams()
	p.Seed = 1
	w, ok := workload.ByName("Mp3d")
	if !ok {
		b.Fatal("no Mp3d workload")
	}
	cfg := workload.Config{Scale: benchScale}
	spawn := func() (*core.System, *workload.Instance) {
		sys, err := core.NewSystem(p)
		if err != nil {
			b.Fatal(err)
		}
		inst, err := w.Spawn(sys, cfg)
		if err != nil {
			b.Fatal(err)
		}
		return sys, inst
	}
	donor, dinst := spawn()
	var shot *snap.Snapshot
	for cut := Cycle(5_000); cut <= 60_000; cut += 1_000 {
		donor.RunUntil(cut)
		if donor.AllDone() {
			b.Fatal("donor run ended before a snapshot was captured")
		}
		if s, err := snap.Capture(donor, dinst); err == nil {
			shot = s
			break
		}
	}
	if shot == nil {
		b.Fatal("no capturable boundary")
	}
	b.Run("capture", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := snap.Capture(donor, dinst); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("restore", func(b *testing.B) {
		target, tinst := spawn()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := snap.Restore(target, tinst, shot); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkForkedSweepRow measures what prefix sharing buys on a full
// Figure-4 row: every transactional variant of one (workload, seed)
// group replays the same timeline until the signatures first disagree,
// so the shared path runs one reference with ghost signatures and forks
// the siblings from a snapshot at the divergence point, instead of
// running every variant from cycle zero. benchdiff reports the
// shared/plain ratio from these two cells.
func BenchmarkForkedSweepRow(b *testing.B) {
	ctx := context.Background()
	seeds := []int64{1, 2}
	p := DefaultParams()
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Figure4(ctx, "Radiosity", benchScale, seeds, &p, 0, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("shared", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Figure4Shared(ctx, "Radiosity", benchScale, seeds, &p, 0, 1, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}
