package logtmse

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"logtmse/internal/core"
	"logtmse/internal/snap"
	"logtmse/internal/workload"
)

// goldenCell pins one cell's headline Stats to values recorded before the
// zero-alloc engine/storage rewrite. The event queue, memory store,
// directory and perfect signature are all implementation details of the
// same (cycle, sequence) total order, so swapping them must leave every
// counter bit-identical. A diff here means the optimization changed
// simulated behavior, not just speed.
type goldenCell struct {
	workload, variant string
	seed              int64
	cycles            Cycle
	workUnits         uint64
	commits, aborts   uint64
	stalls            uint64
	l1Hits, nacks     uint64
}

// Recorded at the pre-rewrite revision with scale 0.05.
var goldenCells = []goldenCell{
	{"BerkeleyDB", "BS", 5, 303375, 32, 288, 1405, 303143, 4876, 280260},
	{"Mp3d", "Perfect", 2, 279250, 25, 852, 154, 2332, 1726, 2261},
	{"Raytrace", "CBS", 1, 1721607, 1, 2392, 4, 2151839, 2049, 2082871},
	{"Cholesky", "DBS", 3, 50991, 1, 64, 465, 1598, 1570, 1278},
	{"Radiosity", "BS_64", 7, 90977, 32, 704, 231, 30227, 744, 29331},
}

// TestGoldenFingerprints verifies the engine-swap bit-identity acceptance
// criterion against cells frozen before the rewrite.
func TestGoldenFingerprints(t *testing.T) {
	for _, g := range goldenCells {
		t.Run(g.workload+"/"+g.variant, func(t *testing.T) {
			v, ok := VariantByName(g.variant)
			if !ok {
				t.Fatalf("unknown variant %q", g.variant)
			}
			r, err := RunOne(RunConfig{
				Workload: g.workload, Variant: v, Scale: 0.05,
			}, g.seed)
			if err != nil {
				t.Fatal(err)
			}
			st := r.Stats
			got := goldenCell{
				g.workload, g.variant, g.seed,
				r.Cycles, r.WorkUnits, st.Commits, st.Aborts, st.Stalls,
				st.Coh.L1Hits, st.Coh.NACKs,
			}
			if got != g {
				t.Errorf("fingerprint drifted:\n got %+v\nwant %+v", got, g)
			}
		})
	}
}

// TestRunParallelIdentity pins the sweep-runner contract at the harness
// level: an experiment cell aggregated at -j1 must be bit-identical to
// the same cell at -j8, runs in seed order included.
func TestRunParallelIdentity(t *testing.T) {
	v, _ := VariantByName("BS")
	rc := RunConfig{
		Workload: "BerkeleyDB", Variant: v, Scale: testScale,
		Seeds: []int64{1, 2, 3, 4, 5, 6},
	}
	rc.Jobs = 1
	serial, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	rc.Jobs = 8
	parallel, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("Run differs between -j1 and -j8:\nserial   %+v\nparallel %+v", serial, parallel)
	}
}

// TestFigure4ParallelIdentity extends the identity to the fanned-out
// variants x seeds cell matrix of a Figure 4 row.
func TestFigure4ParallelIdentity(t *testing.T) {
	p := DefaultParams()
	serial, err := Figure4(context.Background(), "Mp3d", testScale, []int64{1, 2}, &p, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Figure4(context.Background(), "Mp3d", testScale, []int64{1, 2}, &p, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("Figure4 differs between -j1 and -j8")
	}
}

// TestDeterministicEventStream is the observability regression gate: two
// runs of the same seed must produce bit-identical Stats and identical
// lifecycle event streams.
func TestDeterministicEventStream(t *testing.T) {
	v, _ := VariantByName("BS")
	run := func() (RunResult, *Recorder) {
		rec := &Recorder{}
		r, err := RunOne(RunConfig{
			Workload: "BerkeleyDB", Variant: v, Scale: testScale, Sink: rec,
		}, 5)
		if err != nil {
			t.Fatal(err)
		}
		return r, rec
	}
	r1, rec1 := run()
	r2, rec2 := run()
	if r1.Stats != r2.Stats {
		t.Errorf("same seed, different Stats:\n%+v\n%+v", r1.Stats, r2.Stats)
	}
	if len(rec1.Events) == 0 {
		t.Fatalf("no events recorded")
	}
	if len(rec1.Events) != len(rec2.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(rec1.Events), len(rec2.Events))
	}
	for i := range rec1.Events {
		if rec1.Events[i] != rec2.Events[i] {
			t.Fatalf("event %d differs:\n%+v\n%+v", i, rec1.Events[i], rec2.Events[i])
		}
	}
	// The exported timeline is therefore byte-identical too.
	var a, b bytes.Buffer
	if err := WriteCatapult(&a, rec1.Events); err != nil {
		t.Fatal(err)
	}
	if err := WriteCatapult(&b, rec2.Events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("catapult exports differ between identical runs")
	}
}

// TestInstrumentationDoesNotPerturb is the bit-identity acceptance
// criterion: attaching a sink and a metrics registry must leave the
// simulated execution untouched — Stats identical to the bare run for
// the same seed.
func TestInstrumentationDoesNotPerturb(t *testing.T) {
	v, _ := VariantByName("CBS")
	for _, wl := range []string{"BerkeleyDB", "Mp3d"} {
		bare, err := RunOne(RunConfig{Workload: wl, Variant: v, Scale: testScale}, 9)
		if err != nil {
			t.Fatal(err)
		}
		rec := &Recorder{}
		met := NewCoreMetrics(NewRegistry())
		inst, err := RunOne(RunConfig{
			Workload: wl, Variant: v, Scale: testScale,
			Sink: rec, Metrics: met, MetricsInterval: 5000,
		}, 9)
		if err != nil {
			t.Fatal(err)
		}
		if bare.Stats != inst.Stats {
			t.Errorf("%s: instrumentation perturbed Stats:\nbare %+v\ninst %+v", wl, bare.Stats, inst.Stats)
		}
		if bare.Cycles != inst.Cycles {
			t.Errorf("%s: cycle count changed: %d vs %d", wl, bare.Cycles, inst.Cycles)
		}
		if len(rec.Events) == 0 {
			t.Errorf("%s: sink saw no events", wl)
		}
		if len(met.Reg.Snapshots()) == 0 {
			t.Errorf("%s: no metric snapshots", wl)
		}
		if met.TxCycles.Count() != inst.Stats.Commits {
			t.Errorf("%s: TxCycles count %d != commits %d", wl, met.TxCycles.Count(), inst.Stats.Commits)
		}
	}
}

// TestOraclesDoNotPerturb is the chaos-tooling bit-identity gate: the
// invariant oracles only observe (weak ticks, no latency, no engine RNG
// draws), so a fully checked run must leave Stats and cycle counts
// bit-identical to the bare run of the same seed — and report zero
// violations on a healthy model.
func TestOraclesDoNotPerturb(t *testing.T) {
	v, _ := VariantByName("BS")
	bare, err := RunOne(RunConfig{Workload: "BerkeleyDB", Variant: v, Scale: testScale}, 11)
	if err != nil {
		t.Fatal(err)
	}
	checked, err := RunOne(RunConfig{
		Workload: "BerkeleyDB", Variant: v, Scale: testScale,
		Checks: AllChecks(500_000),
	}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if bare.Stats != checked.Stats {
		t.Errorf("oracles perturbed Stats:\nbare %+v\nchecked %+v", bare.Stats, checked.Stats)
	}
	if bare.Cycles != checked.Cycles {
		t.Errorf("oracles changed cycle count: %d vs %d", bare.Cycles, checked.Cycles)
	}
	if len(checked.CheckFailures) != 0 {
		t.Errorf("healthy run reported violations: %v", checked.CheckFailures)
	}
}

// TestFaultInjectionDeterministic pins the chaos replay contract: the
// same fault plan and seed reproduce identical Stats and fault counts,
// and an inactive plan is bit-identical to no plan at all.
func TestFaultInjectionDeterministic(t *testing.T) {
	v, _ := VariantByName("BS")
	plan, err := FaultMix("storm", 0) // seed derived from the run seed
	if err != nil {
		t.Fatal(err)
	}
	run := func() RunResult {
		r, err := RunOne(RunConfig{
			Workload: "BerkeleyDB", Variant: v, Scale: testScale,
			Checks: AllChecks(500_000), Fault: plan, MaxCycles: 3_000_000,
		}, 17)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r1, r2 := run(), run()
	if r1.Stats != r2.Stats {
		t.Errorf("same plan+seed, different Stats:\n%+v\n%+v", r1.Stats, r2.Stats)
	}
	if len(r1.Faults) == 0 {
		t.Errorf("storm plan injected nothing: %v", r1.Faults)
	}
	for k, n := range r1.Faults {
		if r2.Faults[k] != n {
			t.Errorf("fault count %s differs: %d vs %d", k, n, r2.Faults[k])
		}
	}
	if len(r1.CheckFailures) != 0 {
		t.Errorf("oracle violations under injection: %v", r1.CheckFailures)
	}

	// A zero-valued plan must not even attach the injector.
	bare, err := RunOne(RunConfig{Workload: "BerkeleyDB", Variant: v, Scale: testScale}, 17)
	if err != nil {
		t.Fatal(err)
	}
	inert, err := RunOne(RunConfig{
		Workload: "BerkeleyDB", Variant: v, Scale: testScale, Fault: FaultPlan{},
	}, 17)
	if err != nil {
		t.Fatal(err)
	}
	if bare.Stats != inert.Stats || bare.Cycles != inert.Cycles {
		t.Errorf("inactive fault plan perturbed the run")
	}
}

// TestTraceOutHasSlicePerCommit mirrors the CLI acceptance criterion:
// the exported timeline contains at least one complete-duration slice
// per committed outermost transaction.
func TestTraceOutHasSlicePerCommit(t *testing.T) {
	v, _ := VariantByName("Perfect")
	rec := &Recorder{}
	r, err := RunOne(RunConfig{
		Workload: "Cholesky", Variant: v, Scale: testScale, Sink: rec,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	doc := BuildCatapult(rec.Events)
	slices := 0
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" && e.Name == "tx" {
			slices++
		}
	}
	if uint64(slices) != r.Stats.Commits {
		t.Errorf("timeline has %d tx slices for %d commits", slices, r.Stats.Commits)
	}
}

// TestCompiledMatchesInterpreted pins the dual-executor contract: for
// every workload, Figure-4 variant, and machine size, the compiled txvm
// tapes must produce a run bit-identical to the closure-based reference
// executor — same cycles, same work units, same value of every counter.
// A diff means a tape's op or RNG-draw sequence diverged from its
// workload body. Short mode trims to the default machine and three
// variants (Lock exercises the spinlock engine, Perfect and BS_64 the
// transactional paths with and without signature pressure).
func TestCompiledMatchesInterpreted(t *testing.T) {
	small := DefaultParams()
	small.Cores, small.GridW, small.GridH = 8, 4, 2
	machines := []struct {
		name string
		p    Params
	}{
		{"c16", DefaultParams()},
		{"c8", small},
	}
	workloads := []string{"BerkeleyDB", "Radiosity", "Raytrace", "Mp3d", "NestedMicro"}
	shortVariants := map[string]bool{"Lock": true, "Perfect": true, "BS_64": true}
	for _, m := range machines {
		if testing.Short() && m.name != "c16" {
			continue
		}
		for _, wname := range workloads {
			for _, v := range Figure4Variants() {
				if testing.Short() && !shortVariants[v.Name] {
					continue
				}
				m, wname, v := m, wname, v
				t.Run(m.name+"/"+wname+"/"+v.Name, func(t *testing.T) {
					t.Parallel()
					p := m.p
					rc := RunConfig{Workload: wname, Variant: v, Scale: 0.02, Params: &p}
					compiled, err := RunOne(rc, 3)
					if err != nil {
						t.Fatal(err)
					}
					rc.Interpret = true
					interpreted, err := RunOne(rc, 3)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(compiled, interpreted) {
						t.Errorf("executors diverged:\ncompiled    %+v\ninterpreted %+v", compiled, interpreted)
					}
				})
			}
		}
	}
}

// TestResetAndRestoreEquivalence closes the loop on machine reuse: for
// every workload and both executors, a pooled machine (System.Reset +
// re-spawn) and a machine restored from a snapshot must reproduce a
// fresh machine's run bit for bit. Interpreted threads live on
// goroutine stacks mid-run, so their snapshot is taken at cycle zero
// (every thread still at its start continuation); compiled runs capture
// mid-flight at the first quiescent boundary past the cut.
func TestResetAndRestoreEquivalence(t *testing.T) {
	workloads := []string{"BerkeleyDB", "Cholesky", "Mp3d", "NestedMicro", "Radiosity", "Raytrace"}
	for _, wname := range workloads {
		for _, interp := range []bool{false, true} {
			mode := "compiled"
			if interp {
				mode = "interpreted"
			}
			wname, interp := wname, interp
			t.Run(wname+"/"+mode, func(t *testing.T) {
				t.Parallel()
				const seed = 3
				p := core.DefaultParams()
				p.Cores, p.ThreadsPerCore = 4, 2
				p.GridW, p.GridH = 2, 2
				p.L2Banks = 4
				p.Seed = seed
				w, ok := workload.ByName(wname)
				if !ok {
					t.Fatalf("no workload %q", wname)
				}
				cfg := workload.Config{Scale: 0.02, Interpret: interp}
				spawn := func() (*core.System, *workload.Instance) {
					sys, err := core.NewSystem(p)
					if err != nil {
						t.Fatalf("NewSystem: %v", err)
					}
					inst, err := w.Spawn(sys, cfg)
					if err != nil {
						t.Fatalf("Spawn: %v", err)
					}
					return sys, inst
				}
				finish := func(sys *core.System, inst *workload.Instance) core.Stats {
					sys.Run()
					if !sys.AllDone() {
						t.Fatalf("run hung; stuck: %v", sys.Stuck())
					}
					if err := inst.Verify(sys); err != nil {
						t.Fatalf("verify: %v", err)
					}
					return sys.Stats()
				}

				// Fresh reference run, snapshotting on the way.
				sys, inst := spawn()
				var shot *snap.Snapshot
				if interp {
					s, err := snap.Capture(sys, inst)
					if err != nil {
						t.Fatalf("cycle-0 capture: %v", err)
					}
					shot = s
				} else {
					// Cycle-0 capture as the fallback for cells that finish
					// before the first cut; prefer a mid-run boundary.
					if s, err := snap.Capture(sys, inst); err == nil {
						shot = s
					}
					for cut := Cycle(500); cut <= 12_000; cut += 500 {
						sys.RunUntil(cut)
						if sys.AllDone() {
							break
						}
						if s, err := snap.Capture(sys, inst); err == nil {
							shot = s
							break
						}
					}
				}
				want := finish(sys, inst)

				// Pooled path: Reset the same machine and run the cell again.
				if err := sys.Reset(seed); err != nil {
					t.Fatalf("Reset: %v", err)
				}
				rinst, err := w.Spawn(sys, cfg)
				if err != nil {
					t.Fatalf("re-spawn after Reset: %v", err)
				}
				if got := finish(sys, rinst); got != want {
					t.Errorf("Reset machine diverged:\n got %+v\nwant %+v", got, want)
				}

				// Restore path: fork the snapshot onto a fresh machine.
				if shot == nil {
					t.Logf("no capturable boundary before the run ended; restore path not exercised")
					return
				}
				fsys, finst := spawn()
				if err := snap.Restore(fsys, finst, shot); err != nil {
					t.Fatalf("restore (cycle %d): %v", shot.Cycle, err)
				}
				if got := finish(fsys, finst); got != want {
					t.Errorf("restored machine (cycle %d) diverged:\n got %+v\nwant %+v", shot.Cycle, got, want)
				}
			})
		}
	}
}
