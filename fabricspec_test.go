package logtmse

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"logtmse/internal/fabric"
)

// TestFigure4CellsMatchLocalEnumeration: the fabric's cell order is the
// local MapNotify submission order, and every key is the cell's
// fingerprint — the two facts that make distributed reports
// byte-identical to local ones.
func TestFigure4CellsMatchLocalEnumeration(t *testing.T) {
	workloads := []string{"Cholesky", "Mp3d"}
	seeds := []int64{1, 2}
	cells, err := Figure4Cells(workloads, testScale, seeds, 0)
	if err != nil {
		t.Fatal(err)
	}
	variants := Figure4Variants()
	if len(cells) != len(workloads)*len(variants)*len(seeds) {
		t.Fatalf("%d cells, want %d", len(cells), len(workloads)*len(variants)*len(seeds))
	}
	for i, c := range cells {
		if c.Index != i {
			t.Fatalf("cell %d has index %d", i, c.Index)
		}
		var spec CellSpec
		if err := json.Unmarshal(c.Spec, &spec); err != nil {
			t.Fatal(err)
		}
		wantW := workloads[i/(len(variants)*len(seeds))]
		wantV := variants[(i/len(seeds))%len(variants)].Name
		wantS := seeds[i%len(seeds)]
		if spec.Workload != wantW || spec.Variant != wantV || spec.Seed != wantS {
			t.Fatalf("cell %d = %+v, want %s/%s seed %d (workload-major, then variant, then seed)",
				i, spec, wantW, wantV, wantS)
		}
		rc, err := spec.runConfig()
		if err != nil {
			t.Fatal(err)
		}
		key, err := Fingerprint(rc, spec.Seed)
		if err != nil {
			t.Fatal(err)
		}
		if key != c.Key {
			t.Fatalf("cell %d key %.12s != fingerprint %.12s", i, c.Key, key)
		}
	}
}

// TestExecuteCellSkewGuard: a tampered spec (different scale under the
// original key — the shape of a version-skewed worker) is refused, not
// computed.
func TestExecuteCellSkewGuard(t *testing.T) {
	cells, err := Figure4Cells([]string{"Cholesky"}, testScale, []int64{1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	exec := ExecuteCell(nil)
	c := cells[0]
	var spec CellSpec
	if err := json.Unmarshal(c.Spec, &spec); err != nil {
		t.Fatal(err)
	}
	spec.Scale = spec.Scale * 2 // the cell this spec now describes is a different cell
	tampered, _ := json.Marshal(spec)
	c.Spec = tampered
	if _, err := exec(context.Background(), c); err == nil {
		t.Fatal("executor computed a cell whose spec no longer matches its key")
	}
}

// TestFabricCampaignByteIdentical is the end-to-end acceptance at the
// harness level: a Figure 4 campaign run through coordinator + HTTP
// workers produces exactly the rows of a local Figure4Observed call.
func TestFabricCampaignByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation campaign")
	}
	workloads := []string{"Cholesky"}
	seeds := []int64{1, 2}

	p := DefaultParams()
	local, err := Figure4Observed(context.Background(), workloads[0], testScale, seeds, &p, 0, 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	cells, err := Figure4Cells(workloads, testScale, seeds, 0)
	if err != nil {
		t.Fatal(err)
	}
	exec := ExecuteCell(nil)
	co, err := fabric.NewCoordinator(cells, fabric.Options{
		Name:     "it",
		LeaseTTL: 30 * time.Second, // cells are real simulations
		Inline:   func(c fabric.Cell) ([]byte, error) { return exec(context.Background(), c) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	for i := 0; i < 3; i++ {
		w := &fabric.Worker{Base: srv.URL, Exec: exec}
		go w.Run(ctx)
	}
	payloads, err := co.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Figure4RowsFromPayloads(workloads, seeds, payloads)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	if !reflect.DeepEqual(rows[0], local) {
		t.Fatalf("fabric row differs from local row:\nfabric: %+v\nlocal:  %+v", rows[0], local)
	}
}

// TestRunOneTrapsPanickingObserver: a panicking Tracer fails its cell
// with an error instead of killing the sweep around it.
func TestRunOneTrapsPanickingObserver(t *testing.T) {
	rc := RunConfig{
		Workload: "Cholesky",
		Variant:  mustVariant(t, "Perfect"),
		Scale:    testScale,
		Tracer:   func(cycle Cycle, thread, event string) { panic("observer bug") },
	}
	_, err := RunOne(rc, 1)
	if err == nil {
		t.Fatal("panicking tracer did not fail the cell")
	}
	if got := err.Error(); !contains(got, "cell panicked") || !contains(got, "observer bug") {
		t.Fatalf("err = %v, want trapped panic naming the observer bug", err)
	}
}

func mustVariant(t *testing.T, name string) Variant {
	t.Helper()
	v, ok := VariantByName(name)
	if !ok {
		t.Fatalf("variant %q missing", name)
	}
	return v
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
