package logtmse

import (
	"context"
	"reflect"
	"testing"
)

// TestSharedRowMatchesUnshared is the prefix-sharing acceptance gate: a
// Figure 4 row computed with prefix-shared groups must be bit-identical
// to the same row computed cell by cell — every RunResult, Stats value
// and derived speedup — and sharing must actually have engaged (at
// least one group simulated one reference instead of five cells).
func TestSharedRowMatchesUnshared(t *testing.T) {
	for _, wl := range []string{"Mp3d", "BerkeleyDB"} {
		wl := wl
		t.Run(wl, func(t *testing.T) {
			p := DefaultParams()
			seeds := []int64{1, 2}
			before := SharedPrefixStats()
			shared, err := Figure4Shared(context.Background(), wl, testScale, seeds, &p, 0, 4, nil)
			if err != nil {
				t.Fatal(err)
			}
			after := SharedPrefixStats()
			if after.Groups == before.Groups {
				t.Errorf("no shared group ran (groups %d -> %d)", before.Groups, after.Groups)
			}
			plain, err := Figure4(context.Background(), wl, testScale, seeds, &p, 0, 4)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(shared, plain) {
				t.Errorf("shared row differs from unshared row:\nshared %+v\nplain  %+v", shared, plain)
			}
		})
	}
}

// TestRunCellsSharedMatchesRunOne pins the general grouped runner
// against per-cell execution over a Table 3-shaped group (seven TM
// signature configs of one benchmark) plus an unshareable straggler,
// and asserts the forked path was exercised: BS_64 is small enough that
// its ghost filters answer some probe differently mid-run.
func TestRunCellsSharedMatchesRunOne(t *testing.T) {
	sigs := []string{"Perfect", "BS", "CBS", "DBS", "BS_64"}
	var cells []SweepCell
	for _, name := range sigs {
		v, ok := VariantByName(name)
		if !ok {
			t.Fatalf("unknown variant %q", name)
		}
		cells = append(cells, SweepCell{
			RC:   RunConfig{Workload: "BerkeleyDB", Variant: v, Scale: testScale},
			Seed: 5,
		})
	}
	// A Lock cell groups with nothing (different synchronization mode)
	// and must still come back in position, bit-identical.
	lock, _ := VariantByName("Lock")
	cells = append(cells, SweepCell{
		RC:   RunConfig{Workload: "BerkeleyDB", Variant: lock, Scale: testScale},
		Seed: 5,
	})

	before := SharedPrefixStats()
	got, err := RunCellsShared(context.Background(), cells, 2)
	if err != nil {
		t.Fatal(err)
	}
	after := SharedPrefixStats()
	if after.Groups == before.Groups {
		t.Errorf("no shared group ran")
	}
	if after.Reused == before.Reused && after.Forked == before.Forked {
		t.Errorf("sharing never reused or forked a cell (reused %d->%d, forked %d->%d, cold %d->%d)",
			before.Reused, after.Reused, before.Forked, after.Forked, before.Cold, after.Cold)
	}
	if len(got) != len(cells) {
		t.Fatalf("got %d results for %d cells", len(got), len(cells))
	}
	for i, c := range cells {
		want, err := RunOne(c.RC, c.Seed)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("cell %d (%s): shared result differs\n got %+v\nwant %+v", i, c.RC.Variant.Name, got[i], want)
		}
	}
}

// TestSharedCacheInterchangeable pins cache interchangeability in both
// directions: results computed by a shared group serve later unshared
// cached runs, and a cache warmed by unshared runs short-circuits the
// shared group entirely.
func TestSharedCacheInterchangeable(t *testing.T) {
	mk := func(name string, cache *ResultCache) RunConfig {
		v, _ := VariantByName(name)
		return RunConfig{Workload: "Mp3d", Variant: v, Scale: testScale, Cache: cache}
	}
	names := []string{"Perfect", "BS", "BS_64"}

	// Shared first: the group populates the cache.
	cache := NewResultCache("", 0)
	var rcs []RunConfig
	for _, n := range names {
		rcs = append(rcs, mk(n, cache))
	}
	shared, err := RunShared(context.Background(), rcs, 3)
	if err != nil {
		t.Fatal(err)
	}
	missesAfterShared := cache.Stats().Misses
	if missesAfterShared == 0 {
		t.Fatalf("shared group stored nothing")
	}
	for i, n := range names {
		r, err := RunOne(mk(n, cache), 3)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r, shared[i]) {
			t.Errorf("%s: cached unshared result differs from shared", n)
		}
	}
	if cache.Stats().Misses != missesAfterShared {
		t.Errorf("unshared reruns missed the cache the shared group filled")
	}

	// Unshared first: the warmed cache must satisfy the whole group
	// without a reference run.
	cache2 := NewResultCache("", 0)
	var want []RunResult
	for _, n := range names {
		r, err := RunOne(mk(n, cache2), 3)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, r)
	}
	before := SharedPrefixStats()
	rcs2 := rcs[:0:0]
	for _, n := range names {
		rcs2 = append(rcs2, mk(n, cache2))
	}
	got, err := RunShared(context.Background(), rcs2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if SharedPrefixStats().Groups != before.Groups {
		t.Errorf("warm cache still simulated a reference run")
	}
	for i := range names {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("%s: shared-from-cache result differs", names[i])
		}
	}
}

// TestShareableGate pins the exclusions: anything the snapshot layer
// cannot capture (interpreted executor, oracles, faults, warm-up, cycle
// bounds, Lock mode, observers) must be refused, and refused cells must
// still run correctly through RunCellsShared's solo path.
func TestShareableGate(t *testing.T) {
	bs, _ := VariantByName("BS")
	lock, _ := VariantByName("Lock")
	base := RunConfig{Workload: "Mp3d", Variant: bs, Scale: testScale}
	if !Shareable(base) {
		t.Fatalf("baseline TM cell should be shareable")
	}
	cases := map[string]RunConfig{}
	withInterp := base
	withInterp.Interpret = true
	cases["interpret"] = withInterp
	withChecks := base
	withChecks.Checks = AllChecks(500_000)
	cases["checks"] = withChecks
	withWarmup := base
	withWarmup.WarmupCycles = 1000
	cases["warmup"] = withWarmup
	withMax := base
	withMax.MaxCycles = 1_000_000
	cases["max-cycles"] = withMax
	withLock := base
	withLock.Variant = lock
	cases["lock-mode"] = withLock
	withTracer := base
	withTracer.Tracer = func(c Cycle, thread, event string) {}
	cases["tracer"] = withTracer
	for name, rc := range cases {
		if Shareable(rc) {
			t.Errorf("%s cell must not be shareable", name)
		}
		if _, ok := PrefixKey(rc, 1); ok {
			t.Errorf("%s cell must not produce a prefix key", name)
		}
	}
}
