package logtmse

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"logtmse/internal/core"
	"logtmse/internal/memo"
)

// ResultCache memoizes simulation-cell results by fingerprint: in
// memory with single-flight dedup, and optionally on disk so repeated
// invocations are incremental. See internal/memo for the storage
// semantics (atomic writes, corruption-tolerant reads, size-capped
// eviction, non-fatal failures).
type ResultCache = memo.Cache

// DefaultCacheMaxBytes caps a disk-backed result cache at 1 GiB unless
// the caller chooses otherwise; a full figure4 sweep's cells encode to
// a few kilobytes each, so the cap is effectively "never in CI, only
// under unattended accumulation".
const DefaultCacheMaxBytes = 1 << 30

// NewResultCache returns a result cache. dir "" keeps it in-memory
// (single-flight dedup within one process); otherwise results persist
// under dir, evicted oldest-first past maxBytes (<= 0 applies
// DefaultCacheMaxBytes).
func NewResultCache(dir string, maxBytes int64) *ResultCache {
	if maxBytes <= 0 {
		maxBytes = DefaultCacheMaxBytes
	}
	return memo.New(dir, maxBytes)
}

// CacheFromFlags builds the result cache behind the conventional
// -cache/-cache-dir flag pair shared by the sweep commands: -cache-dir
// implies -cache, and -cache alone keeps the cache in memory
// (single-flight dedup within one invocation). Returns nil when
// caching is off, which every RunConfig treats as "simulate normally".
func CacheFromFlags(enabled bool, dir string) *ResultCache {
	if !enabled && dir == "" {
		return nil
	}
	return NewResultCache(dir, 0)
}

// CacheSummary formats the one-line report the sweep commands print to
// standard error after a cached run (standard output stays
// byte-identical with and without caching; see the CI job).
func CacheSummary(c *ResultCache) string {
	s := c.Stats()
	return fmt.Sprintf("cache: %d hits (%d from disk, %d remote), %d misses, %d evictions, %d errors",
		s.Hits, s.DiskHits, s.RemoteHits, s.Misses, s.Evictions, s.Errors)
}

// encodeResult serializes one cell result for the cache. gob covers
// every exported RunResult field — including check failures and fault
// counters — and decodes to a DeepEqual-identical value (pinned by
// TestResultCodecRoundTrip).
func encodeResult(r RunResult) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeResult(payload []byte) (RunResult, error) {
	var r RunResult
	err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&r)
	return r, err
}

// poolableCell reports whether a cell may run on a pooled machine:
// nothing attached beyond the machine itself. Observers are excluded
// because pooled systems are only reset, not re-observed; oracles and
// fault injection are excluded conservatively — they attach extra state
// whose reset path is not worth auditing for a pure performance
// optimization (such cells simply construct cold, exactly as before).
func poolableCell(rc RunConfig) bool {
	return Cacheable(rc) && !rc.Checks.Any() && !rc.Fault.Active()
}

// poolingOff disables pooled-System reuse globally (see SetSystemPooling).
var poolingOff atomic.Bool

// SetSystemPooling enables or disables pooled-System reuse and reports
// the previous setting. Pooling is on by default and byte-identical to
// cold construction (pinned by TestPooledResetIdentity); the switch
// exists for benchmarks and tests that want to measure or pin the cold
// path specifically.
func SetSystemPooling(enabled bool) (prev bool) {
	return !poolingOff.Swap(!enabled)
}

// systemPool recycles fully constructed machines between cells. Keyed
// by the machine configuration (Params with the seed zeroed), so a cell
// only ever reuses a machine built for exactly its configuration; the
// per-key free list is capped so an eclectic sweep cannot hoard
// machines. A pooled machine is Reset(seed) on checkout, which refuses
// machines with live threads — those never enter the pool, but the
// checkout-time check makes reuse safe even if a future caller pools
// carelessly.
type systemPool struct {
	mu   sync.Mutex
	free map[core.Params][]*core.System
}

var sysPool = systemPool{free: make(map[core.Params][]*core.System)}

func poolKey(p core.Params) core.Params {
	p.Seed = 0
	return p
}

func (sp *systemPool) get(p core.Params, seed int64) *core.System {
	if poolingOff.Load() || p.Sink != nil {
		return nil
	}
	key := poolKey(p)
	sp.mu.Lock()
	list := sp.free[key]
	var sys *core.System
	if n := len(list); n > 0 {
		sys = list[n-1]
		list[n-1] = nil
		sp.free[key] = list[:n-1]
	}
	sp.mu.Unlock()
	if sys == nil {
		return nil
	}
	if err := sys.Reset(seed); err != nil {
		// A machine with a live thread is unusable; drop it.
		return nil
	}
	return sys
}

func (sp *systemPool) put(sys *core.System) {
	if poolingOff.Load() || sys.P.Sink != nil || !sys.AllDone() {
		return
	}
	key := poolKey(sys.P)
	limit := 2 * runtime.GOMAXPROCS(0)
	sp.mu.Lock()
	if len(sp.free[key]) < limit {
		sp.free[key] = append(sp.free[key], sys)
	}
	sp.mu.Unlock()
}

// drainSystemPool empties the pool (tests: guarantee the next cell
// constructs cold, or that a specific machine is reused).
func drainSystemPool() {
	sysPool.mu.Lock()
	sysPool.free = make(map[core.Params][]*core.System)
	sysPool.mu.Unlock()
}
