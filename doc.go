// Package logtmse is a Go reproduction of "LogTM-SE: Decoupling Hardware
// Transactional Memory from Caches" (Yen et al., HPCA-13, 2007).
//
// It provides a deterministic discrete-event simulator of the paper's
// 16-core CMP (Table 1), the LogTM-SE hardware transactional memory —
// read/write-set signatures with eager conflict detection, a per-thread
// undo log with eager version management, local commit, sticky directory
// states, summary signatures, unbounded open/closed nesting, context
// switching/migration and paging — plus the lock-based baseline, the five
// evaluation workloads calibrated to Table 2, and a harness that
// regenerates every table and figure of the evaluation.
//
// Quick start:
//
//	params := logtmse.DefaultParams()
//	sys, _ := logtmse.NewSystem(params)
//	pt := sys.NewPageTable(1)
//	sys.SpawnOn(0, 0, "worker", 1, pt, func(a *logtmse.API) {
//	    a.Transaction(func() {
//	        v := a.Load(0x1000)
//	        a.Store(0x1000, v+1)
//	    })
//	})
//	sys.Run()
//
// The experiment harness (Run, RunOne, Figure4) reproduces the
// evaluation; see EXPERIMENTS.md for paper-vs-measured results.
package logtmse

import (
	"logtmse/internal/addr"
	"logtmse/internal/check"
	"logtmse/internal/coherence"
	"logtmse/internal/core"
	"logtmse/internal/fault"
	"logtmse/internal/sig"
	"logtmse/internal/sim"
)

// Re-exported simulator types: the library's public surface wraps the
// internal packages so downstream users never import logtmse/internal/...
type (
	// System is a simulated LogTM-SE machine.
	System = core.System
	// Params configures a machine (Table 1 defaults via DefaultParams).
	Params = core.Params
	// API is the blocking interface workload threads use.
	API = core.API
	// Thread is a software thread.
	Thread = core.Thread
	// Barrier synchronizes threads.
	Barrier = core.Barrier
	// Cycle is simulated time in processor cycles.
	Cycle = sim.Cycle
	// VAddr is a virtual byte address.
	VAddr = addr.VAddr
	// PAddr is a physical byte address.
	PAddr = addr.PAddr
	// ASID names an address space.
	ASID = addr.ASID
	// SigConfig selects a signature implementation and size.
	SigConfig = sig.Config
	// Stats aggregates run counters.
	Stats = core.Stats
	// Resolution is a conflict-resolution (contention-management) policy.
	Resolution = core.Resolution
	// TraceFunc receives the engine's transactional event stream.
	TraceFunc = core.TraceFunc
	// CheckConfig selects the runtime invariant oracles (RunConfig.Checks).
	CheckConfig = check.Config
	// Checker evaluates the invariant oracles against one system.
	Checker = check.Checker
	// CheckFailure is one recorded invariant violation.
	CheckFailure = check.Failure
	// FaultPlan configures the deterministic fault injector
	// (RunConfig.Fault); the zero value injects nothing.
	FaultPlan = fault.Plan
	// Sabotage arms a deliberate engine bug (RunConfig.Sabotage); the
	// zero value is a correct engine.
	Sabotage = core.Sabotage
	// Injector drives a FaultPlan against one system.
	Injector = fault.Injector
)

// AllChecks returns a CheckConfig with every oracle enabled and the
// given progress-watchdog window (0 disarms the watchdog).
func AllChecks(watchdogWindow Cycle) CheckConfig { return check.All(watchdogWindow) }

// FaultMixNames lists the named fault mixes of the chaos campaign.
func FaultMixNames() []string { return fault.MixNames() }

// FaultMix returns the FaultPlan for a named mix with the given seed.
func FaultMix(name string, seed int64) (FaultPlan, error) { return fault.MixPlan(name, seed) }

// Conflict-resolution policies.
const (
	ResolveStallAbort      = core.ResolveStallAbort
	ResolveRequesterAborts = core.ResolveRequesterAborts
	ResolveYoungerAborts   = core.ResolveYoungerAborts
)

// ConflictDetection selects the conflict-detection hardware.
type ConflictDetection = core.ConflictDetection

// Conflict-detection mechanisms: LogTM-SE signatures, or the original
// LogTM's R/W cache bits (the less-virtualizable baseline of §8).
const (
	CDSignature = core.CDSignature
	CDCacheBits = core.CDCacheBits
)

// Signature kinds (Figure 3 plus the idealized baseline).
const (
	SigPerfect         = sig.KindPerfect
	SigBitSelect       = sig.KindBitSelect
	SigDoubleBitSelect = sig.KindDoubleBitSelect
	SigCoarseBitSelect = sig.KindCoarseBitSelect
	// SigH3 is the k-hash Bloom extension (the "more creative
	// signatures" §5 anticipates for larger transactions).
	SigH3 = sig.KindH3
)

// Coherence protocols.
const (
	ProtocolDirectory = coherence.Directory
	ProtocolSnoop     = coherence.Snoop
)

// NewSystem builds a machine.
func NewSystem(p Params) (*System, error) { return core.NewSystem(p) }

// DefaultParams returns the paper's Table 1 system configuration.
func DefaultParams() Params { return core.DefaultParams() }

// NewBarrier returns a reusable n-thread barrier.
func NewBarrier(n int) *Barrier { return core.NewBarrier(n) }
