package main

import (
	"bytes"
	"context"
	"fmt"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"logtmse"
)

func campaignArgs(journal string, localWorkers int) []string {
	args := []string{
		"-workloads", "Cholesky", "-scale", "0.02", "-seeds", "2",
		"-local-workers", fmt.Sprint(localWorkers), "-idle-inline", "100ms",
	}
	if journal != "" {
		args = append(args, "-journal", journal)
	}
	return args
}

// TestSweepdCampaignAndJournalResume runs a small campaign end to end
// through run() — local workers over real HTTP — then re-runs it on the
// same journal with no workers at all. The resumed run must recompute
// nothing (every cell resumed from the journal) and print a
// byte-identical report.
func TestSweepdCampaignAndJournalResume(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "campaign.journal")
	var out1, log1 bytes.Buffer
	if code := run(context.Background(), campaignArgs(journal, 2), &out1, &log1); code != 0 {
		t.Fatalf("first run exited %d\n%s", code, log1.String())
	}
	cells := len(logtmse.Figure4Variants()) * 2
	if !strings.Contains(log1.String(), fmt.Sprintf("%d cells done", cells)) {
		t.Fatalf("first run summary missing %d cells done:\n%s", cells, log1.String())
	}

	// No workers this time: the only ways to finish are the journal and
	// idle-inline. All cells must come from the journal.
	var out2, log2 bytes.Buffer
	if code := run(context.Background(), campaignArgs(journal, 0), &out2, &log2); code != 0 {
		t.Fatalf("resumed run exited %d\n%s", code, log2.String())
	}
	if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
		t.Fatalf("resumed report differs from original:\n--- original\n%s--- resumed\n%s",
			out1.String(), out2.String())
	}
	want := fmt.Sprintf("%d resumed from journal", cells)
	if !strings.Contains(log2.String(), want) {
		t.Fatalf("resumed run summary missing %q:\n%s", want, log2.String())
	}
}

// TestSweepdReportMatchesFigure4 pins the tool-level byte-identity
// claim: sweepd's stdout for a campaign equals the figure4 command's
// stdout for the same parameters.
func TestSweepdReportMatchesFigure4(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the figure4 binary")
	}
	bin := filepath.Join(t.TempDir(), "figure4")
	build := exec.Command("go", "build", "-o", bin, "logtmse/cmd/figure4")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building figure4: %v\n%s", err, out)
	}
	ref, err := exec.Command(bin, "-workloads", "Cholesky", "-scale", "0.02", "-seeds", "2").Output()
	if err != nil {
		t.Fatalf("figure4: %v", err)
	}

	var out, log bytes.Buffer
	if code := run(context.Background(), campaignArgs("", 3), &out, &log); code != 0 {
		t.Fatalf("sweepd exited %d\n%s", code, log.String())
	}
	if !bytes.Equal(ref, out.Bytes()) {
		t.Fatalf("sweepd report differs from figure4:\n--- figure4\n%s--- sweepd\n%s",
			ref, out.String())
	}
}

// TestSweepdSharePrefixReportIdentical pins the fabric half of the
// prefix-sharing claim: a campaign whose local workers execute batched
// cells through the prefix-shared runner prints a byte-identical report
// to a plain per-cell campaign, and the sharing actually engaged.
func TestSweepdSharePrefixReportIdentical(t *testing.T) {
	var plain, plainLog bytes.Buffer
	if code := run(context.Background(), campaignArgs("", 2), &plain, &plainLog); code != 0 {
		t.Fatalf("plain run exited %d\n%s", code, plainLog.String())
	}
	var shared, sharedLog bytes.Buffer
	args := append(campaignArgs("", 2), "-share-prefix", "-idle-inline", "1h")
	if code := run(context.Background(), args, &shared, &sharedLog); code != 0 {
		t.Fatalf("share-prefix run exited %d\n%s", code, sharedLog.String())
	}
	if !bytes.Equal(plain.Bytes(), shared.Bytes()) {
		t.Fatalf("share-prefix report differs from plain:\n--- plain\n%s--- shared\n%s",
			plain.String(), shared.String())
	}
	if !strings.Contains(sharedLog.String(), "share-prefix:") {
		t.Fatalf("share-prefix run printed no sharing summary:\n%s", sharedLog.String())
	}
}

// syncBuffer is a bytes.Buffer safe for one writer and one polling
// reader on different goroutines.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestSweepdWorkerMode drives worker mode against a coordinator run
// in-process: the coordinator gets no local workers and an idle-inline
// far beyond the test's life, so only the runWorker fleet can finish
// the campaign — over real HTTP.
func TestSweepdWorkerMode(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	var out syncBuffer
	var log syncBuffer
	codeCh := make(chan int, 1)
	go func() {
		codeCh <- run(ctx, []string{
			"-workloads", "Cholesky", "-scale", "0.02", "-seeds", "1",
			"-idle-inline", "1h", "-addr", "127.0.0.1:0",
		}, &out, &log)
	}()

	// The coordinator prints its bound address to stderr once listening.
	var base string
	for base == "" {
		for _, line := range strings.Split(log.String(), "\n") {
			if idx := strings.Index(line, "on http://"); idx >= 0 {
				base = strings.TrimSpace(line[idx+len("on "):])
			}
		}
		if base == "" {
			select {
			case <-ctx.Done():
				t.Fatalf("coordinator never printed its address:\n%s", log.String())
			case <-time.After(10 * time.Millisecond):
			}
		}
	}

	var wlog bytes.Buffer
	if code := runWorker(ctx, base, 2, "", 30*time.Second, 0, false, &wlog); code != 0 {
		t.Fatalf("worker exited %d\n%s\ncoordinator log:\n%s", code, wlog.String(), log.String())
	}
	if code := <-codeCh; code != 0 {
		t.Fatalf("coordinator exited %d\n%s", code, log.String())
	}
	if !strings.Contains(out.String(), "Cholesky") {
		t.Fatalf("coordinator report missing the workload row:\n%s", out.String())
	}
}
