// Command sweepd runs a Figure 4 campaign over the fault-tolerant
// sweep fabric. In coordinator mode (the default) it shards the
// campaign's cells to HTTP workers under time-bounded leases, journals
// every completion so a killed coordinator resumes without
// recomputation, and prints the same report figure4 prints —
// byte-identical regardless of worker deaths, duplicate deliveries, or
// resume. In worker mode (-worker URL) it leases cells from a remote
// coordinator and executes them through the simulation harness,
// sharing the coordinator's result cache as a remote memo tier.
//
// Usage:
//
//	sweepd [-addr 127.0.0.1:0] [-local-workers N] [-journal PATH] ...
//	sweepd -worker http://host:port [-j N]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"logtmse"
	"logtmse/internal/fabric"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sweepd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workerURL = fs.String("worker", "", "run as a worker against this coordinator URL instead of coordinating")
		jobs      = fs.Int("j", 1, "worker mode: concurrent cells this worker executes")

		addr         = fs.String("addr", "127.0.0.1:0", "coordinator listen address (0 port picks one; printed to stderr)")
		names        = fs.String("workloads", "all", "comma-separated benchmark names or 'all'")
		scale        = fs.Float64("scale", 1.0, "input scale relative to the paper's (1.0 = Table 2 inputs)")
		seeds        = fs.Int("seeds", 3, "number of pseudo-random perturbations per cell (95% CIs)")
		threads      = fs.Int("threads", 0, "worker threads per simulated machine (0 = all 32 contexts)")
		journal      = fs.String("journal", "", "append-only completion ledger; reuse the same path to resume a killed campaign")
		fsync        = fs.Bool("fsync", false, "fsync the journal after every record")
		useCache     = fs.Bool("cache", false, "memoize cell results by fingerprint (in-memory)")
		cacheDir     = fs.String("cache-dir", "", "persist cached cell results in this directory (implies -cache); workers use it as a local tier")
		leaseTTL     = fs.Duration("lease-ttl", 0, "how long a worker may hold a cell without heartbeating (0 = fabric default)")
		maxAttempts  = fs.Int("max-attempts", 0, "lease grants per cell before quarantine and inline execution (0 = fabric default)")
		idleInline   = fs.Duration("idle-inline", 5*time.Second, "run pending cells inline after this long with no worker activity (0 disables)")
		localWorkers = fs.Int("local-workers", 0, "spawn this many in-process workers against the coordinator's own address")
		linger       = fs.Duration("linger", 3*time.Second, "after the campaign completes, keep serving 'done' this long so remote workers exit cleanly")
		giveUp       = fs.Duration("give-up", 2*time.Minute, "worker mode: exit once the coordinator has been unreachable this long (0 = retry forever)")
		leaseBatch   = fs.Int("lease-batch", 0, "cells granted per lease round trip (0 = one; campaign cells are row-ordered, so variants*seeds co-locates a full Figure 4 row on one worker)")
		sharePrefix  = fs.Bool("share-prefix", false, "workers execute each leased batch through the prefix-shared runner (implies batching; results are byte-identical either way)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *workerURL != "" {
		return runWorker(ctx, *workerURL, *jobs, *cacheDir, *giveUp, *leaseBatch, *sharePrefix, stderr)
	}
	return runCoordinator(ctx, coordinatorConfig{
		addr: *addr, names: *names, scale: *scale, seeds: *seeds, threads: *threads,
		journal: *journal, fsync: *fsync, useCache: *useCache, cacheDir: *cacheDir,
		leaseTTL: *leaseTTL, maxAttempts: *maxAttempts, idleInline: *idleInline,
		localWorkers: *localWorkers, linger: *linger,
		leaseBatch: *leaseBatch, sharePrefix: *sharePrefix,
	}, stdout, stderr)
}

type coordinatorConfig struct {
	addr, names     string
	scale           float64
	seeds, threads  int
	journal         string
	fsync, useCache bool
	cacheDir        string
	leaseTTL        time.Duration
	maxAttempts     int
	idleInline      time.Duration
	localWorkers    int
	linger          time.Duration
	leaseBatch      int
	sharePrefix     bool
}

func runCoordinator(ctx context.Context, cfg coordinatorConfig, stdout, stderr io.Writer) int {
	var sel []string
	if cfg.names == "all" {
		for _, w := range logtmse.Workloads() {
			sel = append(sel, w.Name)
		}
	} else {
		sel = strings.Split(cfg.names, ",")
	}
	seedList := make([]int64, cfg.seeds)
	for i := range seedList {
		seedList[i] = int64(i + 1)
	}
	cells, err := logtmse.Figure4Cells(sel, cfg.scale, seedList, cfg.threads)
	if err != nil {
		fmt.Fprintf(stderr, "sweepd: %v\n", err)
		return 2
	}
	cache := logtmse.CacheFromFlags(cfg.useCache, cfg.cacheDir)
	exec := logtmse.ExecuteCell(cache)
	co, err := fabric.NewCoordinator(cells, fabric.Options{
		Name:         "figure4",
		LeaseTTL:     cfg.leaseTTL,
		MaxAttempts:  cfg.maxAttempts,
		JournalPath:  cfg.journal,
		FsyncJournal: cfg.fsync,
		Cache:        cache,
		Inline:       func(c fabric.Cell) ([]byte, error) { return exec(ctx, c) },
		IdleInline:   cfg.idleInline,
		Logf: func(format string, args ...interface{}) {
			fmt.Fprintf(stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintf(stderr, "sweepd: %v\n", err)
		return 1
	}
	defer co.Close()

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		fmt.Fprintf(stderr, "sweepd: listen: %v\n", err)
		return 1
	}
	srv := &http.Server{Handler: co.Handler()}
	go srv.Serve(ln)
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			srv.Close()
		}
	}()
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(stderr, "sweepd: coordinating %d cells on %s\n", len(cells), base)

	// Local workers get their own cancelation so they die with this
	// coordinator: a worker that outlives its campaign would retry the
	// freed port forever — and complete a later campaign that happens to
	// bind it (harmless by idempotency, but a leak and a confusing race).
	wctx, stopWorkers := context.WithCancel(ctx)
	defer stopWorkers()
	batch := cfg.leaseBatch
	if cfg.sharePrefix && batch < 2 {
		// One full row per grant: that is what lets a batch contain
		// every group-mate of each seed's variant group.
		batch = len(logtmse.Figure4Variants()) * len(seedList)
	}
	var execBatch func(context.Context, []fabric.Cell) ([][]byte, error)
	if cfg.sharePrefix {
		execBatch = logtmse.ExecuteCellsShared(cache)
	}
	for i := 0; i < cfg.localWorkers; i++ {
		w := &fabric.Worker{Base: base, ID: fmt.Sprintf("local-%d", i), Exec: exec,
			Batch: batch, ExecBatch: execBatch}
		go w.Run(wctx)
	}

	payloads, err := co.Run(ctx)
	if err != nil {
		fmt.Fprintf(stderr, "sweepd: %v\n", err)
		if errors.Is(err, context.Canceled) {
			return 130
		}
		return 1
	}
	rows, err := logtmse.Figure4RowsFromPayloads(sel, seedList, payloads)
	if err != nil {
		fmt.Fprintf(stderr, "sweepd: %v\n", err)
		return 1
	}
	logtmse.WriteFigure4Header(stdout, cfg.scale, cfg.seeds)
	for _, row := range rows {
		logtmse.WriteFigure4Row(stdout, row)
	}
	p := co.Progress()
	fmt.Fprintf(stderr,
		"sweepd: %d cells done in %.1fs: %d resumed from journal, %d from cache, %d leases, %d duplicates dropped, %d expiries, %d inline\n",
		p.CellsDone, p.ElapsedSec, p.Resumed, p.CacheHits,
		p.LeasesGranted, p.DuplicateResults, p.ExpiredLeases, p.InlineRuns)
	if cfg.sharePrefix {
		fmt.Fprintln(stderr, logtmse.PrefixSummary())
	}
	if cache != nil {
		fmt.Fprintln(stderr, logtmse.CacheSummary(cache))
	}
	// Lame duck: a worker polls at most every 2s (fabric PollMax), so
	// keep answering /lease with "done" a moment longer — otherwise
	// workers mid-poll see the port vanish and can't tell "campaign
	// finished" from "coordinator crashed". Skipped when no worker ever
	// leased anything.
	if cfg.linger > 0 && p.LeasesGranted > 0 {
		select {
		case <-ctx.Done():
		case <-time.After(cfg.linger):
		}
	}
	return 0
}

func runWorker(ctx context.Context, base string, jobs int, cacheDir string, giveUp time.Duration, leaseBatch int, sharePrefix bool, stderr io.Writer) int {
	if jobs < 1 {
		jobs = 1
	}
	// Every worker gets a memo cache whose remote tier is the
	// coordinator: local hits skip the network, local misses consult the
	// coordinator's cache, and every local computation is pushed back so
	// the whole fleet shares one result pool.
	cache := logtmse.NewResultCache(cacheDir, 0)
	cache.Remote, cache.RemoteStore = fabric.RemoteCacheFuncs(base, nil)
	exec := logtmse.ExecuteCell(cache)
	var execBatch func(context.Context, []fabric.Cell) ([][]byte, error)
	if sharePrefix {
		execBatch = logtmse.ExecuteCellsShared(cache)
		if leaseBatch < 2 {
			// The worker cannot see the coordinator's -seeds, so default
			// to one row at the default 3 seeds; pass -lease-batch
			// variants*seeds to match a differently sized campaign.
			leaseBatch = len(logtmse.Figure4Variants()) * 3
		}
	}
	logf := func(format string, args ...interface{}) {
		fmt.Fprintf(stderr, format+"\n", args...)
	}
	host, _ := os.Hostname()
	var wg sync.WaitGroup
	errs := make([]error, jobs)
	for i := 0; i < jobs; i++ {
		w := &fabric.Worker{
			Base:        base,
			ID:          fmt.Sprintf("%s-%d-%d", host, os.Getpid(), i),
			Exec:        exec,
			Batch:       leaseBatch,
			ExecBatch:   execBatch,
			GiveUpAfter: giveUp,
			Logf:        logf,
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = w.Run(ctx)
		}(i)
	}
	wg.Wait()
	if sharePrefix {
		fmt.Fprintln(stderr, logtmse.PrefixSummary())
	}
	for _, err := range errs {
		if err != nil {
			fmt.Fprintf(stderr, "sweepd: worker: %v\n", err)
			if errors.Is(err, context.Canceled) {
				return 130
			}
			return 1
		}
	}
	fmt.Fprintln(stderr, "sweepd: coordinator reports campaign complete")
	return 0
}
