// Command reproduce runs the paper's entire evaluation — Tables 2 and 3,
// Figure 4, and Result 4 — in one pass and writes a markdown report of
// measured values next to the paper's reference numbers. At -scale 1 it
// is the full reproduction (several minutes); smaller scales give a
// quick sanity pass.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"logtmse"
	"logtmse/internal/sig"
	"logtmse/internal/sweep"
	"logtmse/internal/workload"
)

// cellResult carries one RunOne cell's outcome through a parallel sweep.
type cellResult struct {
	r   logtmse.RunResult
	err error
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	scale := flag.Float64("scale", 0.25, "input scale (1.0 = paper inputs)")
	seeds := flag.Int("seeds", 3, "seeds for Figure 4 confidence intervals")
	out := flag.String("out", "", "write the markdown report here (default stdout)")
	jobs := flag.Int("j", 0, "parallel simulation cells (0 = GOMAXPROCS); the report is byte-identical for any -j")
	useCache := flag.Bool("cache", false, "memoize cell results by fingerprint (the report is byte-identical either way)")
	cacheDir := flag.String("cache-dir", "", "persist cached cell results in this directory across invocations (implies -cache)")
	flag.Parse()
	cache := logtmse.CacheFromFlags(*useCache, *cacheDir)

	var b strings.Builder
	seedList := make([]int64, *seeds)
	for i := range seedList {
		seedList[i] = int64(i + 1)
	}
	perfect, _ := logtmse.VariantByName("Perfect")

	fmt.Fprintf(&b, "# LogTM-SE evaluation report (scale %.2f, %d seeds)\n\n", *scale, *seeds)

	// --- Table 2 -------------------------------------------------------
	fmt.Fprintf(&b, "## Table 2 — benchmarks (measured vs paper)\n\n")
	fmt.Fprintf(&b, "| Benchmark | Txns | Read avg/max | Write avg/max | Paper (txns, r, w) |\n|---|---|---|---|---|\n")
	paper2 := map[string]string{
		"BerkeleyDB": "1,120, 8.1/30, 6.8/28",
		"Cholesky":   "261, 4.0/4, 2.0/2",
		"Radiosity":  "11,172, 2.0/25, 1.5/45",
		"Raytrace":   "47,781, 5.8/550, 2.0/3",
		"Mp3d":       "17,733, 2.2/18, 1.7/10",
	}
	workloads := logtmse.Workloads()
	// Table 2 and Result 4 read the same Perfect-signature seed-1 cells,
	// so run them once, in parallel, and report from both tables below.
	perfectCells, err := sweep.Map(ctx, len(workloads), *jobs, func(i int) cellResult {
		r, err := logtmse.RunOne(logtmse.RunConfig{
			Workload: workloads[i].Name, Variant: perfect, Scale: *scale, Cache: cache,
		}, 1)
		return cellResult{r: r, err: err}
	})
	if err != nil {
		fatal(err)
	}
	for i, w := range workloads {
		if perfectCells[i].err != nil {
			fatal(perfectCells[i].err)
		}
		st := perfectCells[i].r.Stats
		fmt.Fprintf(&b, "| %s | %d | %.1f/%d | %.1f/%d | %s |\n",
			w.Name, st.Commits, st.ReadSetAvg(), st.ReadSetMax,
			st.WriteSetAvg(), st.WriteSetMax, paper2[w.Name])
	}

	// --- Figure 4 ------------------------------------------------------
	fmt.Fprintf(&b, "\n## Figure 4 — speedup vs locks\n\n")
	variants := logtmse.Figure4Variants()
	fmt.Fprintf(&b, "| Benchmark |")
	for _, v := range variants {
		fmt.Fprintf(&b, " %s |", v.Name)
	}
	fmt.Fprintf(&b, "\n|---|")
	for range variants {
		fmt.Fprintf(&b, "---|")
	}
	fmt.Fprintln(&b)
	for _, w := range workloads {
		params := logtmse.DefaultParams()
		row, err := logtmse.Figure4Cached(ctx, w.Name, *scale, seedList, &params, 0, *jobs, cache)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(&b, "| %s |", w.Name)
		for _, v := range variants {
			fmt.Fprintf(&b, " %.2f±%.2f |", row.Speedup[v.Name], row.CI[v.Name])
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "\nPaper shape: BerkeleyDB and Raytrace 20-50%% faster with TM; Cholesky,\n")
	fmt.Fprintf(&b, "Radiosity and Mp3d not significantly different; CBS/DBS track Perfect;\n")
	fmt.Fprintf(&b, "BS_64 up to 20%% slower for Radiosity and Raytrace only.\n")

	// --- Table 3 -------------------------------------------------------
	fmt.Fprintf(&b, "\n## Table 3 — conflict detection vs signature\n\n")
	cells := []struct {
		label string
		sc    sig.Config
	}{
		{"Perfect", sig.Config{Kind: sig.KindPerfect}},
		{"BS_2048", sig.Config{Kind: sig.KindBitSelect, Bits: 2048}},
		{"CBS_2048", sig.Config{Kind: sig.KindCoarseBitSelect, Bits: 2048}},
		{"DBS_2048", sig.Config{Kind: sig.KindDoubleBitSelect, Bits: 2048}},
		{"BS_64", sig.Config{Kind: sig.KindBitSelect, Bits: 64}},
		{"CBS_64", sig.Config{Kind: sig.KindCoarseBitSelect, Bits: 64}},
		{"DBS_64", sig.Config{Kind: sig.KindDoubleBitSelect, Bits: 64}},
	}
	table3WLs := []string{"Raytrace", "BerkeleyDB"}
	table3, err := sweep.Map(ctx, len(table3WLs)*len(cells), *jobs, func(i int) cellResult {
		wl, c := table3WLs[i/len(cells)], cells[i%len(cells)]
		r, err := logtmse.RunOne(logtmse.RunConfig{
			Workload: wl,
			Variant:  logtmse.Variant{Name: c.label, Mode: workload.TM, Sig: c.sc},
			Scale:    *scale,
			Cache:    cache,
		}, 1)
		return cellResult{r: r, err: err}
	})
	if err != nil {
		fatal(err)
	}
	for wi, wl := range table3WLs {
		fmt.Fprintf(&b, "### %s\n\n| Signature | Txns | Aborts | Stalls | FalsePos%% |\n|---|---|---|---|---|\n", wl)
		for ci, c := range cells {
			out := table3[wi*len(cells)+ci]
			if out.err != nil {
				fatal(out.err)
			}
			st := out.r.Stats
			fmt.Fprintf(&b, "| %s | %d | %d | %d | %.1f |\n",
				c.label, st.Commits, st.Aborts, st.Stalls, st.FPEpisodePct())
		}
		fmt.Fprintln(&b)
	}

	// --- Result 4 ------------------------------------------------------
	fmt.Fprintf(&b, "## Result 4 — transactional victimization\n\n")
	fmt.Fprintf(&b, "| Benchmark | Txns | Tx victims | Paper |\n|---|---|---|---|\n")
	paper4 := map[string]string{
		"BerkeleyDB": "<20", "Cholesky": "<20", "Radiosity": "<20",
		"Raytrace": "481 in 48K", "Mp3d": "<20",
	}
	for i, w := range workloads {
		st := perfectCells[i].r.Stats
		fmt.Fprintf(&b, "| %s | %d | %d | %s |\n",
			w.Name, st.Commits, st.Coh.L1TxVictims+st.Coh.L2TxVictims, paper4[w.Name])
	}

	if cache != nil {
		fmt.Fprintln(os.Stderr, logtmse.CacheSummary(cache))
	}
	if *out == "" {
		fmt.Print(b.String())
		return
	}
	if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("report written to %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reproduce:", err)
	if errors.Is(err, context.Canceled) {
		os.Exit(130)
	}
	os.Exit(1)
}
