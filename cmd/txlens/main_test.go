package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"logtmse"
)

// runArgs invokes run() in-process with a fresh flag set (flags are
// registered inside run, so each call needs its own CommandLine).
func runArgs(t *testing.T, args ...string) int {
	t.Helper()
	oldArgs, oldFlags := os.Args, flag.CommandLine
	defer func() { os.Args, flag.CommandLine = oldArgs, oldFlags }()
	flag.CommandLine = flag.NewFlagSet("txlens", flag.ContinueOnError)
	os.Args = append([]string{"txlens"}, args...)
	return run()
}

// TestReportReconcilesAndIsDeterministic runs a small real campaign
// twice at different -j and checks exit status, reconciliation (a
// mismatch exits 1), report shape, and byte-identity.
func TestReportReconcilesAndIsDeterministic(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.txt"), filepath.Join(dir, "b.txt")
	args := []string{"-workload", "BerkeleyDB", "-variant", "BS_64",
		"-scale", "0.03", "-seeds", "2", "-top", "3"}
	if code := runArgs(t, append(args, "-j", "1", "-out", a)...); code != 0 {
		t.Fatalf("run -j1 exited %d", code)
	}
	if code := runArgs(t, append(args, "-j", "8", "-out", b)...); code != 0 {
		t.Fatalf("run -j8 exited %d", code)
	}
	ba, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ba) != string(bb) {
		t.Errorf("report differs between -j1 and -j8")
	}
	out := string(ba)
	for _, want := range []string{
		"=== BerkeleyDB / BS_64",
		"engine: commits=",
		"reconciled: true+alias+sticky=",
		"signature-positive attribution",
		"hottest blocks",
		"blame graph",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestBadFlagsRejected(t *testing.T) {
	if code := runArgs(t, "-workload", "NoSuchBench"); code != 2 {
		t.Errorf("unknown workload exited %d, want 2", code)
	}
	if code := runArgs(t, "-variant", "Lock"); code != 2 {
		t.Errorf("Lock variant exited %d, want 2 (attribution needs transactions)", code)
	}
}

func TestListHelpers(t *testing.T) {
	ws, err := workloadList("all")
	if err != nil || len(ws) != 5 {
		t.Errorf("workloadList(all) = %v, %v", ws, err)
	}
	vs, err := variantList("all")
	if err != nil || len(vs) == 0 {
		t.Fatalf("variantList(all) = %v, %v", vs, err)
	}
	for _, v := range vs {
		if v.Name == "Lock" {
			t.Errorf("variantList(all) includes the Lock baseline")
		}
	}
}

func TestReconcileDetectsMismatch(t *testing.T) {
	p := logtmse.NewProfiler()
	s := &logtmse.Stats{}
	if err := reconcile(p, s); err != nil {
		t.Errorf("empty profiler vs empty stats: %v", err)
	}
	s.Stalls = 7
	if err := reconcile(p, s); err == nil {
		t.Error("lost NACKs not detected")
	}
}
