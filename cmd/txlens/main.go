// Command txlens runs a campaign with the conflict-attribution profiler
// attached and explains where the contention went: which blocks and
// pages cause NACKs, stalls and aborts (split by requester/responder
// core, transaction phase and request type), how the signature
// positives partition into true conflicts / Bloom aliases / sticky-set
// carryover / summary-signature hits, who blocks whom (blame graph,
// detected deadlock cycles, critical-path stall chains), and how much
// work each abort cause discarded.
//
// Every attributed counter is reconciled against the engine's own
// Stats before the report is written; any mismatch is a bug and fails
// the run. The report is byte-identical across -j values and re-runs:
// per-cell profilers merge in submission order and every table sorts
// deterministically.
//
//	txlens                                  # BerkeleyDB / BS, 3 seeds
//	txlens -workload all -variant all       # full Figure-4 sweep
//	txlens -variant BS_64 -top 20           # aliasing-prone signature
//	txlens -serve :9464 ...                 # live /metrics and /progress
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"logtmse"
	"logtmse/internal/sweep"
)

// cell is one (workload, variant, seed) simulation in the campaign.
type cell struct {
	workload string
	variant  logtmse.Variant
	seed     int64
}

// cellOut carries a cell's result and its attribution.
type cellOut struct {
	res  logtmse.RunResult
	prof *logtmse.Profiler
	err  error
}

// combo is the (workload, variant) aggregation of a report section.
type combo struct {
	workload string
	variant  string
}

func main() {
	os.Exit(run())
}

func run() int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	workloadName := flag.String("workload", "BerkeleyDB", "benchmark (Table 2) or \"all\"")
	variantName := flag.String("variant", "BS", "signature variant (Figure 4 TM bars) or \"all\"")
	scale := flag.Float64("scale", 0.1, "input scale")
	threads := flag.Int("threads", 0, "worker threads (0 = all contexts)")
	seeds := flag.Int("seeds", 3, "seeds per (workload, variant) cell")
	seedBase := flag.Int64("seed-base", 1, "first seed")
	maxCycles := flag.Int64("max-cycles", 0, "hang backstop per run (cycles; 0 = unbounded)")
	top := flag.Int("top", 10, "rows per report table")
	out := flag.String("out", "", "write the report here (default stdout)")
	serveAddr := flag.String("serve", "", "serve live /metrics and /progress on this address during the campaign")
	jobs := flag.Int("j", 0, "parallel cells (0 = GOMAXPROCS); the report is byte-identical for any -j")
	verbose := flag.Bool("v", false, "print one line per cell to stderr")
	flag.Parse()

	workloads, err := workloadList(*workloadName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	variants, err := variantList(*variantName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	var cells []cell
	for _, w := range workloads {
		for _, v := range variants {
			for s := 0; s < *seeds; s++ {
				cells = append(cells, cell{workload: w, variant: v, seed: *seedBase + int64(s)})
			}
		}
	}

	camp := logtmse.NewCampaign("txlens", len(cells))
	if *serveAddr != "" {
		bound, stop, err := logtmse.ServeCampaign(*serveAddr, camp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "serving /metrics and /progress on http://%s\n", bound)
	}

	// Each cell gets its own Profiler (sinks are single-goroutine);
	// results land in submission order, so the merge below — and the
	// report — is byte-identical for any -j.
	begin, end := camp.Hooks()
	outs, err := sweep.MapNotify(ctx, len(cells), *jobs, begin, end, func(i int) cellOut {
		c := cells[i]
		p := logtmse.NewProfiler()
		res, err := logtmse.RunOne(logtmse.RunConfig{
			Workload:  c.workload,
			Variant:   c.variant,
			Scale:     *scale,
			Threads:   *threads,
			MaxCycles: logtmse.Cycle(*maxCycles),
			Prof:      p,
		}, c.seed)
		camp.RecordRun(res.Stats.Commits, res.Stats.Aborts, res.Stats.Stalls)
		for cause, n := range abortCauses(p) {
			for k := uint64(0); k < n; k++ {
				camp.AddAbortCause(cause)
			}
		}
		if err != nil {
			camp.FailCell()
		}
		return cellOut{res: res, prof: p, err: err}
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "txlens:", err)
		if errors.Is(err, context.Canceled) {
			return 130
		}
		return 1
	}

	// Aggregate per (workload, variant): merge profilers and sum Stats
	// in submission order.
	merged := make(map[combo]*logtmse.Profiler)
	stats := make(map[combo]*logtmse.Stats)
	var order []combo
	bad := 0
	for i, o := range outs {
		c := cells[i]
		if *verbose {
			status := "ok"
			if o.err != nil {
				status = "FAIL: " + o.err.Error()
			}
			fmt.Fprintf(os.Stderr, "%-12s %-8s seed %3d  %10d cycles  %s\n",
				c.workload, c.variant.Name, c.seed, uint64(o.res.Cycles), status)
		}
		if o.err != nil {
			fmt.Fprintf(os.Stderr, "txlens: %s/%s seed %d: %v\n", c.workload, c.variant.Name, c.seed, o.err)
			bad++
			continue
		}
		k := combo{workload: c.workload, variant: c.variant.Name}
		if merged[k] == nil {
			merged[k] = logtmse.NewProfiler()
			stats[k] = &logtmse.Stats{}
			order = append(order, k)
		}
		merged[k].Merge(o.prof)
		addStats(stats[k], o.res.Stats)
	}

	var sb strings.Builder
	for _, k := range order {
		p, s := merged[k], stats[k]
		fmt.Fprintf(&sb, "=== %s / %s (scale %g, %d seeds) ===\n", k.workload, k.variant, *scale, *seeds)
		fmt.Fprintf(&sb, "engine: commits=%d aborts=%d stalls=%d fp-stalls=%d summary=%d possible-cycle-aborts=%d\n",
			s.Commits, s.Aborts, s.Stalls, s.FalsePositiveStalls, s.SummaryConflicts, s.PossibleCycleAborts)
		if err := reconcile(p, s); err != nil {
			fmt.Fprintf(os.Stderr, "txlens: %s/%s: attribution mismatch: %v\n", k.workload, k.variant, err)
			bad++
		}
		fmt.Fprintf(&sb, "reconciled: true+alias+sticky=%d == stalls; alias+sticky=%d == fp-stalls; summary=%d; conflict-aborts=%d == possible-cycle\n",
			p.Attr.TotalNacks(), p.Attr.FalsePositives(), p.Attr.Summary, p.ConflictAborts)
		p.Report(&sb, *top)
		sb.WriteString("\n")
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer f.Close()
		w = f
	}
	io.WriteString(w, sb.String())
	if bad > 0 {
		return 1
	}
	return 0
}

// workloadList resolves -workload.
func workloadList(name string) ([]string, error) {
	if name == "all" {
		var out []string
		for _, w := range logtmse.Workloads() {
			out = append(out, w.Name)
		}
		return out, nil
	}
	if _, ok := logtmse.WorkloadByName(name); !ok {
		return nil, fmt.Errorf("txlens: unknown workload %q", name)
	}
	return []string{name}, nil
}

// variantList resolves -variant to TM variants (attribution needs
// transactions; the Lock baseline has none).
func variantList(name string) ([]logtmse.Variant, error) {
	if name == "all" {
		var out []logtmse.Variant
		for _, v := range logtmse.Figure4Variants() {
			if v.Name != "Lock" {
				out = append(out, v)
			}
		}
		return out, nil
	}
	v, ok := logtmse.VariantByName(name)
	if !ok || v.Name == "Lock" {
		return nil, fmt.Errorf("txlens: unknown or non-TM variant %q", name)
	}
	return []logtmse.Variant{v}, nil
}

// abortCauses extracts the per-cause abort counts of one cell's
// profiler for the campaign telemetry.
func abortCauses(p *logtmse.Profiler) map[logtmse.AbortCause]uint64 {
	out := make(map[logtmse.AbortCause]uint64)
	for c := range p.Wasted {
		if n := p.Wasted[c].Aborts; n > 0 {
			out[logtmse.AbortCause(c)] = n
		}
	}
	return out
}

// addStats sums the reconciliation-relevant counters.
func addStats(dst *logtmse.Stats, s logtmse.Stats) {
	dst.Commits += s.Commits
	dst.Aborts += s.Aborts
	dst.Stalls += s.Stalls
	dst.FalsePositiveStalls += s.FalsePositiveStalls
	dst.SummaryConflicts += s.SummaryConflicts
	dst.PossibleCycleAborts += s.PossibleCycleAborts
}

// reconcile cross-checks the attribution against the engine's own
// counters; any violation means the profiler lost or misclassified
// events and fails the run.
func reconcile(p *logtmse.Profiler, s *logtmse.Stats) error {
	if got, want := p.Attr.TotalNacks(), s.Stalls; got != want {
		return fmt.Errorf("true+alias+sticky = %d, engine stalls = %d", got, want)
	}
	if got, want := p.Attr.FalsePositives(), s.FalsePositiveStalls; got != want {
		return fmt.Errorf("alias+sticky = %d, engine false-positive stalls = %d", got, want)
	}
	if got, want := p.Attr.Summary, s.SummaryConflicts; got != want {
		return fmt.Errorf("summary hits = %d, engine summary conflicts = %d", got, want)
	}
	if got, want := p.ConflictAborts, s.PossibleCycleAborts; got != want {
		return fmt.Errorf("conflict aborts = %d, engine possible-cycle aborts = %d", got, want)
	}
	if p.CycleAborts > p.ConflictAborts {
		return fmt.Errorf("cycle aborts %d exceed conflict aborts %d", p.CycleAborts, p.ConflictAborts)
	}
	return nil
}
