package main

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// goldenReportSHA256 is the sha256 of the report produced by
// `chaos -seeds 12 -scale 0.03`. The campaign must stay byte-identical
// across refactors and across every -j. Re-pinned after the
// conflict-detection fixes the differential campaign surfaced (sticky
// owners retained while signature membership holds, progressive
// nested-abort escalation, summary checks moved to response time) —
// each changes abort/stall schedules, so the report bytes legitimately
// moved.
const goldenReportSHA256 = "648de3b4f2fadce110e91b8e4bc3685686f94d688974db8fec835cf15035ca57"

// TestReportByteIdentical builds the chaos binary, runs the pinned
// campaign serially and with 8 workers, and checks both reports against
// each other and the pre-rewrite golden hash.
func TestReportByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the campaign binary")
	}
	bin := filepath.Join(t.TempDir(), "chaos")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	run := func(jobs string) string {
		out := filepath.Join(t.TempDir(), "report-"+jobs+".json")
		cmd := exec.Command(bin, "-seeds", "12", "-scale", "0.03", "-j", jobs, "-out", out)
		if o, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("chaos -j %s: %v\n%s", jobs, err, o)
		}
		buf, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256(buf)
		return hex.EncodeToString(sum[:])
	}
	serial := run("1")
	parallel := run("8")
	if serial != parallel {
		t.Errorf("report differs between -j1 (%s) and -j8 (%s)", serial, parallel)
	}
	if serial != goldenReportSHA256 {
		t.Errorf("report drifted from the pre-rewrite golden:\n got %s\nwant %s", serial, goldenReportSHA256)
	}
}
