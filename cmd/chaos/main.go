// Command chaos runs randomized fault-injection campaigns against the
// LogTM-SE model with every runtime invariant oracle armed, and writes a
// deterministic JSON report.
//
// Each campaign seed is one run: the seed picks a fault mix (round-robin
// over the named mixes unless -mix fixes one), drives a seeded
// deterministic fault schedule against a workload, and checks the
// invariant oracles (shadow-memory serializability, signature
// membership, undo-log LIFO, sticky-state audit, progress watchdog) plus
// the workload's own verification. Passive mixes (delay, victims,
// signoise, aborts) run a Table 2 benchmark through the harness;
// OS-level mixes (sched, storm) run an oversubscribed counter workload
// under the OS model so forced deschedules and page relocations can
// fire.
//
// With -sabotage the fault mixes are replaced by a planted engine bug
// (one undo record skipped during one abort, at a seed-dependent depth)
// and the campaign becomes a self-test: the oracles must catch the
// defect, and with -bisect each caught run is localized to its first
// bad cycle by binary search over full-state snapshots.
//
// The report is byte-identical across repeated invocations with the same
// flags: all randomness derives from the seeds, and no timestamps or map
// iteration orders leak in. Reproduce a single failing run with -replay:
//
//	chaos -seeds 200                    # full campaign, all mixes
//	chaos -seeds 50 -mix storm          # one mix only
//	chaos -replay 137                   # re-run campaign seed 137 exactly
//	chaos -seeds 200 -out report.json   # write the report to a file
//	chaos -seeds 8 -sabotage -bisect    # plant a bug, catch it, localize it
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"

	"logtmse"
	"logtmse/internal/addr"
	"logtmse/internal/core"
	"logtmse/internal/fault"
	"logtmse/internal/osm"
	"logtmse/internal/sig"
	"logtmse/internal/sim"
	"logtmse/internal/sweep"
)

// runRecord is one seed's outcome in the report.
type runRecord struct {
	Seed     int64                  `json:"seed"`
	Mix      string                 `json:"mix"`
	Scenario string                 `json:"scenario"` // "harness" or "scheduler"
	OK       bool                   `json:"ok"`
	Cycles   uint64                 `json:"cycles"`
	Faults   map[string]uint64      `json:"faults,omitempty"`
	Failures []logtmse.CheckFailure `json:"failures,omitempty"`
	Error    string                 `json:"error,omitempty"`
	// Bisect localizes a sabotage-campaign failure to its first bad
	// cycle via snapshot binary search (-sabotage -bisect).
	Bisect      *logtmse.BisectResult `json:"bisect,omitempty"`
	BisectError string                `json:"bisect_error,omitempty"`
}

// report is the campaign document. Field order and map encoding are
// chosen so the bytes are reproducible for the same flags.
type report struct {
	Campaign campaign    `json:"campaign"`
	Runs     []runRecord `json:"runs"`
	Summary  summary     `json:"summary"`
}

type campaign struct {
	SeedBase  int64   `json:"seed_base"`
	Seeds     int     `json:"seeds"`
	Mix       string  `json:"mix"`
	Workload  string  `json:"workload"`
	Scale     float64 `json:"scale"`
	Threads   int     `json:"threads"`
	MaxCycles uint64  `json:"max_cycles"`
	Watchdog  uint64  `json:"watchdog_window"`
	Sabotage  bool    `json:"sabotage,omitempty"`
	SnapEvery uint64  `json:"snap_every,omitempty"`
}

type summary struct {
	Runs        int               `json:"runs"`
	Failed      int               `json:"failed"`
	FailedSeeds []int64           `json:"failed_seeds,omitempty"`
	Faults      map[string]uint64 `json:"faults,omitempty"`
}

type config struct {
	workload  string
	scale     float64
	threads   int
	maxCycles sim.Cycle
	watchdog  sim.Cycle
	// sabotage replaces the fault mix with the deliberate undo-walk bug;
	// bisect then localizes each failure to its first bad cycle by
	// snapshot binary search with snapEvery stride.
	sabotage  bool
	bisect    bool
	snapEvery sim.Cycle
	cache     *logtmse.ResultCache
	// metrics, when set (-metrics-out), is shared by every run; the
	// campaign then runs serially so the interval snapshots interleave
	// deterministically.
	metrics *logtmse.CoreMetrics
	// camp, when set (-serve), receives live per-run telemetry.
	camp *logtmse.Campaign
}

func main() {
	os.Exit(run())
}

// run carries main's body and returns the exit code, so that deferred
// profile writers fire before the process exits.
func run() int {
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	seeds := flag.Int("seeds", 24, "number of campaign seeds to run")
	seedBase := flag.Int64("seed-base", 1, "first seed")
	mix := flag.String("mix", "all", "fault mix: all | "+joinMixes())
	replay := flag.Int64("replay", 0, "re-run exactly one campaign seed and report it")
	workloadName := flag.String("workload", "BerkeleyDB", "benchmark for the harness scenario (Table 2)")
	scale := flag.Float64("scale", 0.05, "input scale for the harness scenario")
	threads := flag.Int("threads", 8, "worker threads for the harness scenario")
	maxCycles := flag.Int64("max-cycles", 3_000_000, "hang backstop per run (cycles)")
	watchdog := flag.Int64("watchdog", 400_000, "progress-watchdog window (cycles; 0 disables)")
	sabotage := flag.Bool("sabotage", false, "replace the fault mixes with a planted engine bug (one skipped undo record; see core.Sabotage) — the campaign is then a self-test that must catch it")
	bisect := flag.Bool("bisect", false, "binary-search each sabotage failure to its first bad cycle over full-state snapshots (requires -sabotage)")
	snapEvery := flag.Uint64("snap-every", 10_000, "snapshot stride in cycles for -bisect")
	out := flag.String("out", "", "write the JSON report here (default stdout)")
	verbose := flag.Bool("v", false, "print one line per run to stderr")
	jobs := flag.Int("j", 0, "parallel campaign runs (0 = GOMAXPROCS); the report is byte-identical for any -j")
	useCache := flag.Bool("cache", false, "memoize harness-scenario results by fingerprint (the report is byte-identical either way)")
	cacheDir := flag.String("cache-dir", "", "persist cached results in this directory across campaigns (implies -cache)")
	metricsOut := flag.String("metrics-out", "", "write the interval metrics time series of the campaign's runs as CSV here (forces -j 1)")
	serveAddr := flag.String("serve", "", "serve live /metrics and /progress on this address during the campaign")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile here")
	memprofile := flag.String("memprofile", "", "write a heap profile here at exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	if *bisect && !*sabotage {
		fmt.Fprintln(os.Stderr, "chaos: -bisect requires -sabotage (fault mixes are hook state a snapshot cannot carry)")
		return 2
	}
	mixes := fault.MixNames()
	switch {
	case *sabotage:
		// The planted bug replaces the fault plan entirely: sabotage is
		// plain machine state, which is what lets -bisect snapshot it.
		mixes = []string{"sabotage"}
		*mix = "sabotage"
	case *mix != "all":
		if _, err := fault.MixPlan(*mix, 0); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		mixes = []string{*mix}
	}
	cfg := config{
		workload:  *workloadName,
		scale:     *scale,
		threads:   *threads,
		maxCycles: sim.Cycle(*maxCycles),
		watchdog:  sim.Cycle(*watchdog),
		sabotage:  *sabotage,
		bisect:    *bisect,
		snapEvery: sim.Cycle(*snapEvery),
		cache:     logtmse.CacheFromFlags(*useCache, *cacheDir),
	}
	if *metricsOut != "" {
		// One registry shared by every run: serialize the campaign so
		// the interval snapshots interleave deterministically. Runs with
		// metrics attached bypass the result cache (see Cacheable).
		cfg.metrics = logtmse.NewCoreMetrics(logtmse.NewRegistry())
		*jobs = 1
	}

	rep := report{Campaign: campaign{
		SeedBase: *seedBase, Seeds: *seeds, Mix: *mix,
		Workload: cfg.workload, Scale: cfg.scale, Threads: cfg.threads,
		MaxCycles: uint64(cfg.maxCycles), Watchdog: uint64(cfg.watchdog),
		Sabotage: *sabotage,
	}}
	if *bisect {
		rep.Campaign.SnapEvery = *snapEvery
	}
	list := campaignSeeds(*seedBase, *seeds)
	if *replay != 0 {
		list = []int64{*replay}
		rep.Campaign.Seeds = 1
		rep.Campaign.SeedBase = *replay
	}
	if *serveAddr != "" {
		cfg.camp = logtmse.NewCampaign("chaos", len(list))
		if cfg.cache != nil {
			cache := cfg.cache
			cfg.camp.CacheStats = func() (hits, misses uint64) {
				s := cache.Stats()
				return s.Hits, s.Misses
			}
		}
		bound, stop, err := logtmse.ServeCampaign(*serveAddr, cfg.camp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaos: -serve:", err)
			return 2
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "serving /metrics and /progress on http://%s\n", bound)
	}
	// Every campaign run is a share-nothing cell, so the sweep runner can
	// fan them out across workers; results land in submission (seed-list)
	// order, keeping the report byte-identical for any -j.
	var begin, end func(i int)
	if cfg.camp != nil {
		begin, end = cfg.camp.Hooks()
	}
	runs, err := sweep.MapNotify(ctx, len(list), *jobs, begin, end, func(i int) runRecord {
		seed := list[i]
		rec := runSeed(mixFor(mixes, *seedBase, seed), seed, cfg)
		if cfg.camp != nil && !rec.OK {
			cfg.camp.FailCell()
		}
		return rec
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		if errors.Is(err, context.Canceled) {
			return 130
		}
		return 1
	}
	rep.Runs = runs
	if *verbose {
		for _, rec := range rep.Runs {
			status := "ok"
			if !rec.OK {
				status = "FAIL: " + rec.Error
			}
			fmt.Fprintf(os.Stderr, "seed %4d  %-9s %-9s %9d cycles  %s\n",
				rec.Seed, rec.Mix, rec.Scenario, rec.Cycles, status)
		}
	}
	rep.Summary = summarize(rep.Runs)
	if cfg.cache != nil {
		fmt.Fprintln(os.Stderr, logtmse.CacheSummary(cfg.cache))
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err == nil {
			err = cfg.metrics.Reg.WriteCSV(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaos: metrics-out:", err)
			return 2
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	buf = append(buf, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	} else {
		os.Stdout.Write(buf)
	}
	if *sabotage {
		return sabotageVerdict(rep, *bisect)
	}
	if rep.Summary.Failed > 0 {
		return 1
	}
	return 0
}

// sabotageVerdict inverts the exit logic for the self-test campaign: a
// planted bug that no oracle catches means the oracles are blind, and
// with -bisect every caught run must also be localized. (Seeds whose
// sabotage never fired — not enough qualifying aborts — legitimately
// pass.)
func sabotageVerdict(rep report, bisect bool) int {
	if rep.Summary.Failed == 0 {
		fmt.Fprintln(os.Stderr, "chaos: SELF-TEST FAILED: the sabotaged engine produced no oracle failure")
		return 1
	}
	if bisect {
		for _, r := range rep.Runs {
			if r.OK {
				continue
			}
			if r.Bisect == nil || r.Bisect.Failure == nil {
				fmt.Fprintf(os.Stderr, "chaos: SELF-TEST FAILED: seed %d caught but not localized: %s\n",
					r.Seed, r.BisectError)
				return 1
			}
			fmt.Fprintf(os.Stderr, "chaos: seed %d: %s\n", r.Seed, r.Bisect)
		}
	}
	fmt.Fprintf(os.Stderr, "chaos: sabotage self-test passed: %d/%d runs caught the planted bug\n",
		rep.Summary.Failed, rep.Summary.Runs)
	return 0
}

func joinMixes() string {
	s := ""
	for i, m := range fault.MixNames() {
		if i > 0 {
			s += " | "
		}
		s += m
	}
	return s
}

func campaignSeeds(base int64, n int) []int64 {
	out := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, base+int64(i))
	}
	return out
}

// mixFor assigns a mix to a seed: round-robin over the mix list, so a
// replayed seed always reproduces the mix the campaign gave it.
func mixFor(mixes []string, base, seed int64) string {
	i := (seed - base) % int64(len(mixes))
	if i < 0 {
		i += int64(len(mixes))
	}
	return mixes[i]
}

func summarize(runs []runRecord) summary {
	s := summary{Runs: len(runs), Faults: map[string]uint64{}}
	for _, r := range runs {
		if !r.OK {
			s.Failed++
			s.FailedSeeds = append(s.FailedSeeds, r.Seed)
		}
		for k, v := range r.Faults {
			s.Faults[k] += v
		}
	}
	if len(s.Faults) == 0 {
		s.Faults = nil
	}
	return s
}

// runSeed executes one campaign run. The OS-level mixes need a scheduler
// to bind, so they take the dedicated scenario; everything else stresses
// a real benchmark through the harness.
func runSeed(mix string, seed int64, cfg config) runRecord {
	switch mix {
	case "sched", "storm":
		return runScheduler(mix, seed, cfg)
	default:
		return runHarness(mix, seed, cfg)
	}
}

// runHarness runs one benchmark seed through the library harness with
// the fault plan (or the planted sabotage) and every oracle attached.
func runHarness(mix string, seed int64, cfg config) runRecord {
	rec := runRecord{Seed: seed, Mix: mix, Scenario: "harness"}
	var plan logtmse.FaultPlan
	if !cfg.sabotage {
		var err error
		plan, err = fault.MixPlan(mix, 0) // Seed 0: harness derives it from the run seed
		if err != nil {
			rec.Error = err.Error()
			return rec
		}
	}
	v, _ := logtmse.VariantByName("BS")
	rc := logtmse.RunConfig{
		Workload:  cfg.workload,
		Variant:   v,
		Scale:     cfg.scale,
		Threads:   cfg.threads,
		MaxCycles: cfg.maxCycles,
		Checks:    logtmse.AllChecks(cfg.watchdog),
		Fault:     plan,
		Cache:     cfg.cache,
		Metrics:   cfg.metrics,
	}
	if cfg.sabotage {
		// One corruption per run, buried a seed-dependent number of
		// aborts deep so the campaign plants the defect at varying
		// depths of the timeline.
		rc.Sabotage = logtmse.Sabotage{SkipUndoRecord: true, SkipLimit: 1, SkipAfter: int(seed % 8)}
	}
	if cfg.camp != nil && cfg.cache == nil {
		// Per-cause abort telemetry needs a sink, and a sink makes the
		// cell uncacheable — attach it only on uncached campaigns.
		rc.Sink = cfg.camp.CountAborts()
	}
	res, err := logtmse.RunOne(rc, seed)
	if cfg.camp != nil {
		cfg.camp.RecordRun(res.Stats.Commits, res.Stats.Aborts, res.Stats.Stalls)
	}
	rec.Cycles = uint64(res.Cycles)
	rec.Faults = res.Faults
	rec.Failures = res.CheckFailures
	if err != nil {
		rec.Error = err.Error()
		bisectRecord(&rec, rc, seed, cfg)
		return rec
	}
	rec.OK = true
	return rec
}

// bisectRecord localizes a failing sabotage run to its first bad cycle.
// The probing oracles ride inside BisectFailure itself, so the cell
// hands over its checks but must shed every observer the snapshot layer
// refuses (cache is merely useless — sabotaged cells have no
// fingerprint — but metrics and sinks are hooks).
func bisectRecord(rec *runRecord, rc logtmse.RunConfig, seed int64, cfg config) {
	if !cfg.bisect || !cfg.sabotage {
		return
	}
	rc.Cache = nil
	rc.Metrics = nil
	rc.Sink = nil
	br, err := logtmse.BisectFailure(rc, seed, cfg.snapEvery)
	if err != nil {
		rec.BisectError = err.Error()
		return
	}
	rec.Bisect = br
}

// runScheduler runs an oversubscribed shared-counter workload under the
// OS model — aggressive time slices, eager mid-transaction preemption,
// an aliasing-prone signature — with the fault plan bound to the
// scheduler so deschedule and page-relocation faults can fire.
func runScheduler(mix string, seed int64, cfg config) runRecord {
	rec := runRecord{Seed: seed, Mix: mix, Scenario: "scheduler"}
	p := core.DefaultParams()
	p.Seed = seed
	p.Cores = 4
	p.ThreadsPerCore = 2
	p.GridW, p.GridH = 2, 2
	p.L1Bytes = 8 * 1024
	p.L2Bytes = 128 * 1024
	p.L2Banks = 4
	p.Signature = sig.Config{Kind: sig.KindBitSelect, Bits: 256}
	if cfg.camp != nil {
		p.Sink = cfg.camp.CountAborts()
	}
	sys, err := core.NewSystem(p)
	if err != nil {
		rec.Error = err.Error()
		return rec
	}
	if cfg.metrics != nil {
		sys.AttachMetrics(cfg.metrics, 10_000)
	}
	chk := sys.AttachChecker(logtmse.AllChecks(cfg.watchdog))
	sched := osm.New(sys, 1_500) // aggressive slices
	sched.DeferInTxFactor = 0    // allow mid-transaction preemption
	proc := sched.NewProcess("P")
	counter := addr.VAddr(0x9000)
	pageArea := addr.VAddr(0x20000)
	const workers, rounds = 6, 10
	for i := 0; i < workers; i++ {
		sched.Spawn(proc, "w", func(a *core.API) {
			rng := a.Rand()
			for r := 0; r < rounds; r++ {
				a.Transaction(func() {
					v := a.Load(counter)
					a.Compute(sim.Cycle(40 + rng.Intn(200)))
					a.Store(counter, v+1)
					a.Store(pageArea+addr.VAddr(rng.Intn(8)*64), v)
				})
				a.Compute(80)
			}
		})
	}
	plan, err := fault.MixPlan(mix, seed*7919+13)
	if err != nil {
		rec.Error = err.Error()
		return rec
	}
	inj := fault.New(plan, sys)
	inj.BindOS(sched, proc)
	inj.Arm()

	end := sys.RunUntil(cfg.maxCycles)
	rec.Cycles = uint64(end)
	rec.Faults = inj.Stats().ByClass()
	rec.Failures = chk.Failures()
	if cfg.camp != nil {
		st := sys.Stats()
		cfg.camp.RecordRun(st.Commits, st.Aborts, st.Stalls)
	}
	if !sys.AllDone() {
		rec.Error = fmt.Sprintf("threads stuck: %v\n%s", sys.Stuck(), sys.Diagnose())
		return rec
	}
	if err := chk.Err(); err != nil {
		rec.Error = err.Error()
		return rec
	}
	if got := sys.Mem.ReadWord(proc.PT.Translate(counter)); got != workers*rounds {
		rec.Error = fmt.Sprintf("counter = %d, want %d (atomicity violated)", got, workers*rounds)
		return rec
	}
	rec.OK = true
	return rec
}
