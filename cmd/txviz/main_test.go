package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"logtmse/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestSummarizeGolden(t *testing.T) {
	buf, err := os.ReadFile(filepath.Join("testdata", "trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc obs.CatapultTrace
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	summarize(&out, &doc, 10)
	checkGolden(t, "trace.golden", out.Bytes())

	// -top truncates the conflict table deterministically.
	out.Reset()
	summarize(&out, &doc, 1)
	checkGolden(t, "trace_top1.golden", out.Bytes())
}

func TestSummarizeMetricsGolden(t *testing.T) {
	var out bytes.Buffer
	if err := summarizeMetrics(&out, filepath.Join("testdata", "metrics.csv")); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.golden", out.Bytes())
}

func TestSummarizeMetricsErrors(t *testing.T) {
	var out bytes.Buffer
	if err := summarizeMetrics(&out, filepath.Join("testdata", "no-such.csv")); err == nil {
		t.Error("missing file accepted")
	}
	empty := filepath.Join(t.TempDir(), "empty.csv")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := summarizeMetrics(&out, empty); err == nil {
		t.Error("empty CSV accepted")
	}
	ragged := filepath.Join(t.TempDir(), "ragged.csv")
	if err := os.WriteFile(ragged, []byte("a,b\n1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := summarizeMetrics(&out, ragged); err == nil {
		t.Error("ragged CSV accepted")
	}
}
