// Command txviz summarizes a catapult trace produced by
// `logtmsim -trace-out`: transaction and stall duration percentiles,
// abort causes, and the top-N conflict addresses. With -metrics it
// instead (or additionally) summarizes a metrics CSV — the final value
// of every counter and gauge, including the result cache's memo.*
// counters when the CSV came from `figure4 -cache-metrics`.
//
// Usage:
//
//	logtmsim -workload BerkeleyDB -scale 0.1 -trace-out run.json
//	txviz run.json
//	txviz -top 20 run.json
//	figure4 -cache -cache-metrics cache.csv && txviz -metrics cache.csv
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"logtmse/internal/obs"
)

func main() {
	top := flag.Int("top", 10, "conflict addresses to list")
	metrics := flag.String("metrics", "", "summarize a metrics CSV (logtmsim -metrics-out or figure4 -cache-metrics)")
	flag.Parse()
	if *metrics != "" {
		if err := summarizeMetrics(os.Stdout, *metrics); err != nil {
			fmt.Fprintf(os.Stderr, "txviz: %v\n", err)
			os.Exit(1)
		}
		if flag.NArg() == 0 {
			return
		}
	}
	if flag.NArg() != 1 {
		fmt.Fprintf(os.Stderr, "usage: txviz [-top N] [-metrics run.csv] <trace.json>\n")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "txviz: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	var doc obs.CatapultTrace
	if err := json.NewDecoder(f).Decode(&doc); err != nil {
		fmt.Fprintf(os.Stderr, "txviz: %s: %v\n", flag.Arg(0), err)
		os.Exit(1)
	}
	summarize(os.Stdout, &doc, *top)
}

// summarizeMetrics prints the last snapshot of a metrics CSV: one
// "name value" line per column, in column order. The result cache's
// memo.* counters show up here like any other registry metric.
func summarizeMetrics(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var header, last []string
	for sc.Scan() {
		fields := strings.Split(sc.Text(), ",")
		if header == nil {
			header = fields
			continue
		}
		last = fields
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if header == nil || last == nil {
		return fmt.Errorf("%s: no metrics snapshots", path)
	}
	if len(last) != len(header) {
		return fmt.Errorf("%s: final row has %d fields for %d columns", path, len(last), len(header))
	}
	fmt.Fprintf(w, "metrics (%s, final snapshot):\n", path)
	for i, name := range header {
		fmt.Fprintf(w, "  %-28s %s\n", name, last[i])
	}
	return nil
}

// conflictStat accumulates per-address conflict activity.
type conflictStat struct {
	addr        string
	nacks       int
	summary     int
	sticky      int
	stallCycles float64
	stallCount  int
}

func (c conflictStat) total() int { return c.nacks + c.summary + c.sticky }

func summarize(w io.Writer, doc *obs.CatapultTrace, top int) {
	var txDur, abortDur, stallDur, walkRecords []float64
	commits, aborts, unfinished := 0, 0, 0
	causes := map[string]int{}
	coreCauses := map[int]map[string]int{}
	conflicts := map[string]*conflictStat{}
	stat := func(addr string) *conflictStat {
		c := conflicts[addr]
		if c == nil {
			c = &conflictStat{addr: addr}
			conflicts[addr] = c
		}
		return c
	}
	argStr := func(args map[string]any, key string) string {
		s, _ := args[key].(string)
		return s
	}

	for _, e := range doc.TraceEvents {
		switch {
		case e.Ph == "X" && e.Name == obs.NameTx:
			commits++
			txDur = append(txDur, e.Dur)
		case e.Ph == "X" && e.Name == obs.NameTxAborted:
			aborts++
			abortDur = append(abortDur, e.Dur)
			if c := argStr(e.Args, "cause"); c != "" {
				causes[c]++
				if coreCauses[e.Pid] == nil {
					coreCauses[e.Pid] = map[string]int{}
				}
				coreCauses[e.Pid][c]++
			}
		case e.Ph == "X" && e.Name == obs.NameTxOpen:
			unfinished++
		case e.Ph == "X" && e.Name == obs.NameStall:
			stallDur = append(stallDur, e.Dur)
			if a := argStr(e.Args, "addr"); a != "" {
				c := stat(a)
				c.stallCycles += e.Dur
				c.stallCount++
			}
		case e.Ph == "X" && e.Name == obs.NameLogWalk:
			if r, ok := e.Args["records"].(float64); ok {
				walkRecords = append(walkRecords, r)
			}
		case e.Ph == "i" && e.Name == obs.NameNack:
			if a := argStr(e.Args, "addr"); a != "" {
				stat(a).nacks++
			}
		case e.Ph == "i" && e.Name == obs.NameSummaryHit:
			if a := argStr(e.Args, "addr"); a != "" {
				stat(a).summary++
			}
		case e.Ph == "i" && e.Name == obs.NameStickyFwd:
			if a := argStr(e.Args, "addr"); a != "" {
				stat(a).sticky++
			}
		}
	}

	fmt.Fprintf(w, "transactions: %d committed, %d aborted attempts", commits, aborts)
	if unfinished > 0 {
		fmt.Fprintf(w, ", %d unfinished", unfinished)
	}
	fmt.Fprintln(w)
	if len(causes) > 0 {
		names := make([]string, 0, len(causes))
		for n := range causes {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "abort causes:")
		for _, n := range names {
			fmt.Fprintf(w, " %s=%d", n, causes[n])
		}
		fmt.Fprintln(w)
		printCoreCauses(w, names, coreCauses)
	}
	printDist(w, "tx duration (cycles)", txDur)
	printDist(w, "aborted attempt duration", abortDur)
	printDist(w, "stall duration (cycles)", stallDur)
	printDist(w, "undo records per abort", walkRecords)

	if len(conflicts) > 0 {
		list := make([]*conflictStat, 0, len(conflicts))
		for _, c := range conflicts {
			list = append(list, c)
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].total() != list[j].total() {
				return list[i].total() > list[j].total()
			}
			return list[i].addr < list[j].addr
		})
		if top > len(list) {
			top = len(list)
		}
		fmt.Fprintf(w, "top %d conflict addresses:\n", top)
		fmt.Fprintf(w, "  %-14s %8s %8s %8s %8s %12s\n",
			"addr", "events", "nacks", "summary", "sticky", "stall-cycles")
		for _, c := range list[:top] {
			fmt.Fprintf(w, "  %-14s %8d %8d %8d %8d %12.0f\n",
				c.addr, c.total(), c.nacks, c.summary, c.sticky, c.stallCycles)
		}
	}
}

// printCoreCauses prints the abort-cause x core breakdown: one row per
// core (the trace's pid), one column per cause, plus a total column.
func printCoreCauses(w io.Writer, names []string, coreCauses map[int]map[string]int) {
	if len(coreCauses) == 0 {
		return
	}
	cores := make([]int, 0, len(coreCauses))
	for c := range coreCauses {
		cores = append(cores, c)
	}
	sort.Ints(cores)
	fmt.Fprintf(w, "aborts by core:\n")
	fmt.Fprintf(w, "  %-6s", "core")
	for _, n := range names {
		fmt.Fprintf(w, " %10s", n)
	}
	fmt.Fprintf(w, " %10s\n", "total")
	for _, core := range cores {
		fmt.Fprintf(w, "  %-6d", core)
		total := 0
		for _, n := range names {
			fmt.Fprintf(w, " %10d", coreCauses[core][n])
			total += coreCauses[core][n]
		}
		fmt.Fprintf(w, " %10d\n", total)
	}
}

// printDist prints count / mean / p50 / p90 / p99 / max for a sample set.
func printDist(w io.Writer, label string, samples []float64) {
	if len(samples) == 0 {
		return
	}
	sum := 0.0
	max := samples[0]
	for _, s := range samples {
		sum += s
		if s > max {
			max = s
		}
	}
	qs := obs.Percentiles(samples, 0.50, 0.90, 0.99)
	fmt.Fprintf(w, "%-26s n=%-7d mean=%-9.1f p50=%-8.0f p90=%-8.0f p99=%-8.0f max=%.0f\n",
		label, len(samples), sum/float64(len(samples)), qs[0], qs[1], qs[2], max)
}
