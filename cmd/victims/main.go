// Command victims reproduces Result 4 of the paper: how often each
// benchmark victimizes transactional blocks from the L1 or L2 caches.
// The paper reports Raytrace victimizing 481 blocks over 48K transactions
// while every other benchmark stays below 20.
package main

import (
	"flag"
	"fmt"
	"os"

	"logtmse"
)

func main() {
	scale := flag.Float64("scale", 1.0, "input scale (1.0 = paper inputs)")
	seed := flag.Int64("seed", 1, "perturbation seed")
	flag.Parse()

	v, _ := logtmse.VariantByName("Perfect")
	fmt.Printf("Result 4: Transactional cache victimization (scale %.2f)\n", *scale)
	fmt.Printf("%-12s %13s %12s %12s %13s\n",
		"Benchmark", "Transactions", "L1 victims", "L2 victims", "Sticky evicts")
	for _, w := range logtmse.Workloads() {
		res, err := logtmse.RunOne(logtmse.RunConfig{
			Workload: w.Name, Variant: v, Scale: *scale,
		}, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "victims: %v\n", err)
			os.Exit(1)
		}
		st := res.Stats
		fmt.Printf("%-12s %13d %12d %12d %13d\n",
			w.Name, st.Commits, st.Coh.L1TxVictims, st.Coh.L2TxVictims, st.Coh.StickyEvicts)
	}
	fmt.Println("\nPaper reference: Raytrace 481 victimizations in 48K transactions;")
	fmt.Println("all other benchmarks victimized transactional blocks fewer than 20 times.")
}
