// Command benchdiff compares two benchmark snapshots written by
// scripts/bench.sh and enforces the performance gate: no guarded cell
// may regress past -max-regress, the Engine.Schedule hot path must stay
// at zero allocations per operation, and the Figure-4 geomean speedup
// versus the base snapshot is reported.
//
// Usage:
//
//	go run ./cmd/benchdiff -base BENCH_baseline.json -new BENCH_abc1234.json
//	go run ./cmd/benchdiff -base BENCH_baseline.json -new BENCH_ci.json -max-regress 0.10
//	go run ./cmd/benchdiff -base BENCH_baseline.json -new BENCH_ci.json -max-geomean 0.02
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
)

type cell struct {
	Name     string             `json:"name"`
	NsOp     float64            `json:"ns_op"`
	AllocsOp float64            `json:"allocs_op"`
	BytesOp  float64            `json:"bytes_op"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
}

type snapshot struct {
	Rev        string `json:"rev"`
	Short      bool   `json:"short"`
	Benchmarks []cell `json:"benchmarks"`
}

func load(path string) (snapshot, error) {
	var s snapshot
	buf, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(buf, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

func main() {
	base := flag.String("base", "BENCH_baseline.json", "baseline snapshot")
	neu := flag.String("new", "", "candidate snapshot (required)")
	maxRegress := flag.Float64("max-regress", 0.10, "fail when a guarded cell's ns/op grows by more than this fraction")
	maxGeomean := flag.Float64("max-geomean", math.Inf(1), "fail when the Figure-4 geomean ratio grows by more than this fraction (per-cell noise averages out, so this gate can be much tighter than -max-regress)")
	flag.Parse()
	if *neu == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -new is required")
		os.Exit(2)
	}
	os.Exit(run(os.Stdout, os.Stderr, *base, *neu, *maxRegress, *maxGeomean))
}

// run performs the comparison and returns the process exit code: 0 on a
// clean gate, 1 on a regression or alloc-gate failure, 2 on bad inputs.
func run(w, errw io.Writer, base, neu string, maxRegress, maxGeomean float64) int {
	b, err := load(base)
	if err != nil {
		fmt.Fprintln(errw, "benchdiff:", err)
		return 2
	}
	n, err := load(neu)
	if err != nil {
		fmt.Fprintln(errw, "benchdiff:", err)
		return 2
	}
	baseBy := map[string]cell{}
	for _, c := range b.Benchmarks {
		baseBy[c.Name] = c
	}

	fmt.Fprintf(w, "benchdiff: %s (%s) -> %s (%s)\n", base, b.Rev, neu, n.Rev)
	fmt.Fprintf(w, "%-34s %14s %14s %8s\n", "cell", "base ns/op", "new ns/op", "ratio")
	failed := false
	var logSum float64
	var logN int
	for _, c := range n.Benchmarks {
		bc, ok := baseBy[c.Name]
		if !ok || bc.NsOp <= 0 {
			fmt.Fprintf(w, "%-34s %14s %14.0f %8s\n", c.Name, "-", c.NsOp, "new")
			continue
		}
		ratio := c.NsOp / bc.NsOp
		mark := ""
		// The cache-hit cell runs in microseconds; scheduler noise swamps
		// the gate there, and a "regression" in cache-hit latency is not a
		// simulation regression. The cold and pooled cells stay guarded.
		guarded := c.Name != "SweepCell/cached"
		if guarded && ratio > 1+maxRegress {
			mark = "  REGRESSION"
			failed = true
		}
		fmt.Fprintf(w, "%-34s %14.0f %14.0f %8.3f%s\n", c.Name, bc.NsOp, c.NsOp, ratio, mark)
		if strings.HasPrefix(c.Name, "Figure4/") {
			logSum += math.Log(ratio)
			logN++
		}
	}
	if logN > 0 {
		geo := math.Exp(logSum / float64(logN))
		fmt.Fprintf(w, "\nFigure4 geomean ratio: %.3f (%.2fx %s)\n",
			geo, math.Max(geo, 1/geo), map[bool]string{true: "slower", false: "faster"}[geo > 1])
		if geo > 1+maxGeomean {
			fmt.Fprintf(w, "GEOMEAN GATE: ratio %.3f exceeds 1+%.2f\n", geo, maxGeomean)
			failed = true
		}
	}
	// Sweep-strategy summary: how much the pooled fast path and the
	// result cache buy over cold construction, within this snapshot.
	newBy := map[string]cell{}
	for _, c := range n.Benchmarks {
		newBy[c.Name] = c
	}
	if cold, ok := newBy["SweepCell/cold"]; ok && cold.NsOp > 0 {
		if p, ok := newBy["SweepCell/pooled"]; ok && p.NsOp > 0 {
			fmt.Fprintf(w, "SweepCell pooled/cold: %.3f (%.0f -> %.0f B/op)\n",
				p.NsOp/cold.NsOp, cold.BytesOp, p.BytesOp)
		}
		if h, ok := newBy["SweepCell/cached"]; ok && h.NsOp > 0 {
			fmt.Fprintf(w, "SweepCell cached/cold: %.4f (%.0fx speedup on a cache hit)\n",
				h.NsOp/cold.NsOp, cold.NsOp/h.NsOp)
		}
	}
	// Prefix-sharing summary: a full Figure-4 row forked from shared
	// snapshot prefixes versus the same row run from scratch.
	if plain, ok := newBy["ForkedSweepRow/plain"]; ok && plain.NsOp > 0 {
		if sh, ok := newBy["ForkedSweepRow/shared"]; ok && sh.NsOp > 0 {
			fmt.Fprintf(w, "ForkedSweepRow shared/plain: %.3f (%.2fx speedup from prefix sharing)\n",
				sh.NsOp/plain.NsOp, plain.NsOp/sh.NsOp)
		}
	}
	// The zero-alloc gate: the event-engine hot path must not allocate.
	for _, c := range n.Benchmarks {
		if strings.HasPrefix(c.Name, "EngineSchedule") && c.AllocsOp != 0 {
			fmt.Fprintf(w, "ALLOC GATE: %s allocates %.1f/op, want 0\n", c.Name, c.AllocsOp)
			failed = true
		}
	}
	if failed {
		fmt.Fprintln(w, "benchdiff: FAIL")
		return 1
	}
	fmt.Fprintln(w, "benchdiff: ok")
	return 0
}
