package main

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func runGolden(t *testing.T, goldenName, neu string, maxRegress float64, wantCode int) string {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(&out, &errOut, filepath.Join("testdata", "base.json"),
		filepath.Join("testdata", neu), maxRegress, math.Inf(1))
	if code != wantCode {
		t.Errorf("%s: exit code %d, want %d\nstderr: %s", neu, code, wantCode, errOut.Bytes())
	}
	path := filepath.Join("testdata", goldenName)
	if *update {
		if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, out.Bytes(), want)
	}
	return out.String()
}

// TestCleanGolden: a snapshot inside the gate passes, reports the
// Figure-4 geomean, the sweep-strategy summary, and marks new cells.
func TestCleanGolden(t *testing.T) {
	out := runGolden(t, "clean.golden", "clean.json", 0.10, 0)
	for _, want := range []string{
		"Figure4 geomean ratio:",
		"SweepCell pooled/cold:",
		"SweepCell cached/cold:",
		"Figure4/Raytrace/BS", // present only in the candidate
		"benchdiff: ok",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("clean output missing %q", want)
		}
	}
	if strings.Contains(out, "REGRESSION") {
		t.Error("clean snapshot flagged a regression")
	}
}

// TestRegressedGolden: a guarded cell past -max-regress and a hot path
// that allocates both fail the gate; the unguarded cached cell does not.
func TestRegressedGolden(t *testing.T) {
	out := runGolden(t, "regressed.golden", "regressed.json", 0.10, 1)
	if !strings.Contains(out, "Figure4/BerkeleyDB/BS") || !strings.Contains(out, "REGRESSION") {
		t.Error("25% regression on a guarded cell not flagged")
	}
	if !strings.Contains(out, "ALLOC GATE: EngineSchedule") {
		t.Error("allocating hot path not flagged")
	}
	if !strings.Contains(out, "benchdiff: FAIL") {
		t.Error("failing snapshot not marked FAIL")
	}
	// SweepCell/cached grew 4.5x but is exempt from the gate.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "SweepCell/cached") && strings.Contains(line, "REGRESSION") {
			t.Error("unguarded cached cell flagged as regression")
		}
	}
}

// TestRegressionThreshold: the same snapshot passes when -max-regress
// admits the slowdown (alloc gate aside, so compare against clean).
func TestRegressionThreshold(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run(&out, &errOut, filepath.Join("testdata", "base.json"),
		filepath.Join("testdata", "clean.json"), 0.001, math.Inf(1))
	if code != 1 {
		t.Errorf("tight gate: exit %d, want 1 (Mp3d grew 2%%)", code)
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Error("tight gate flagged nothing")
	}
}

// TestGeomeanGate: the Figure-4 geomean gate fires on a snapshot whose
// average drift (1.118 in regressed.json) exceeds -max-geomean even
// when the per-cell gate is loosened out of the way, stays quiet when
// loosened itself, and never fires on an overall-faster snapshot
// (clean.json, geomean 0.984).
func TestGeomeanGate(t *testing.T) {
	var out, errOut bytes.Buffer
	base := filepath.Join("testdata", "base.json")
	regressed := filepath.Join("testdata", "regressed.json")
	code := run(&out, &errOut, base, regressed, 10.0, 0.02)
	if code != 1 {
		t.Errorf("tight geomean gate: exit %d, want 1", code)
	}
	if !strings.Contains(out.String(), "GEOMEAN GATE:") {
		t.Error("tight geomean gate flagged nothing")
	}
	out.Reset()
	run(&out, &errOut, base, regressed, 10.0, 10.0)
	if strings.Contains(out.String(), "GEOMEAN GATE:") {
		t.Error("loose geomean gate fired")
	}
	out.Reset()
	if code := run(&out, &errOut, base, filepath.Join("testdata", "clean.json"), 0.10, 0.02); code != 0 {
		t.Errorf("faster snapshot under the geomean gate: exit %d, want 0", code)
	}
}

func TestBadInputs(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(&out, &errOut, "testdata/no-such.json", "testdata/clean.json", 0.1, math.Inf(1)); code != 2 {
		t.Errorf("missing base: exit %d, want 2", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run(&out, &errOut, filepath.Join("testdata", "base.json"), bad, 0.1, math.Inf(1)); code != 2 {
		t.Errorf("corrupt candidate: exit %d, want 2", code)
	}
}
