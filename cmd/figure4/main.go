// Command figure4 regenerates Figure 4 of the paper: execution-time
// speedup of LogTM-SE variants (Perfect, BS, CBS, DBS at 2 Kb, BS_64)
// normalized to the lock-based baseline, for each of the five benchmarks.
//
// Usage:
//
//	figure4 [-scale 1.0] [-seeds 3] [-threads 32] [-workloads all] [-j N]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"logtmse"
	"logtmse/internal/obs"
)

func main() {
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	scale := flag.Float64("scale", 1.0, "input scale relative to the paper's (1.0 = Table 2 inputs)")
	seeds := flag.Int("seeds", 3, "number of pseudo-random perturbations per cell (95% CIs)")
	threads := flag.Int("threads", 0, "worker threads (0 = all 32 contexts)")
	names := flag.String("workloads", "all", "comma-separated benchmark names or 'all'")
	jobs := flag.Int("j", 0, "parallel simulation cells (0 = GOMAXPROCS); results are identical for any -j")
	useCache := flag.Bool("cache", false, "memoize cell results by fingerprint (in-memory; output is byte-identical either way)")
	cacheDir := flag.String("cache-dir", "", "persist cached cell results in this directory across invocations (implies -cache)")
	cacheMetrics := flag.String("cache-metrics", "", "write the cache hit/miss/eviction counters as a metrics CSV here (summarize with txviz -metrics)")
	serveAddr := flag.String("serve", "", "serve live /metrics and /progress on this address during the sweep")
	sharePrefix := flag.Bool("share-prefix", false, "run each seed's TM variants as one prefix-shared group: simulate the common prefix once, fork diverging variants from snapshots (output is byte-identical either way)")
	flag.Parse()
	cache := logtmse.CacheFromFlags(*useCache, *cacheDir)

	var sel []string
	if *names == "all" {
		for _, w := range logtmse.Workloads() {
			sel = append(sel, w.Name)
		}
	} else {
		sel = strings.Split(*names, ",")
	}
	seedList := make([]int64, *seeds)
	for i := range seedList {
		seedList[i] = int64(i + 1)
	}

	variants := logtmse.Figure4Variants()
	var camp *logtmse.Campaign
	if *serveAddr != "" {
		camp = logtmse.NewCampaign("figure4", len(sel)*len(variants)*len(seedList))
		if cache != nil {
			camp.CacheStats = func() (hits, misses uint64) {
				s := cache.Stats()
				return s.Hits, s.Misses
			}
		}
		bound, stop, err := logtmse.ServeCampaign(*serveAddr, camp)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure4: -serve: %v\n", err)
			os.Exit(2)
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "serving /metrics and /progress on http://%s\n", bound)
	}
	logtmse.WriteFigure4Header(os.Stdout, *scale, *seeds)
	for _, name := range sel {
		params := logtmse.DefaultParams()
		var row logtmse.Figure4Row
		var err error
		if *sharePrefix {
			row, err = logtmse.Figure4SharedObserved(ctx, name, *scale, seedList, &params, *threads, *jobs, cache, camp)
		} else {
			row, err = logtmse.Figure4Observed(ctx, name, *scale, seedList, &params, *threads, *jobs, cache, camp)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure4: %v\n", err)
			if errors.Is(err, context.Canceled) {
				os.Exit(130)
			}
			os.Exit(1)
		}
		logtmse.WriteFigure4Row(os.Stdout, row)
	}
	if *sharePrefix {
		fmt.Fprintln(os.Stderr, logtmse.PrefixSummary())
	}
	if cache != nil {
		fmt.Fprintln(os.Stderr, logtmse.CacheSummary(cache))
	}
	if *cacheMetrics != "" {
		if cache == nil {
			fmt.Fprintln(os.Stderr, "figure4: -cache-metrics needs -cache or -cache-dir")
			os.Exit(2)
		}
		reg := obs.NewRegistry()
		cache.Bind(reg)
		reg.Snapshot(0)
		f, err := os.Create(*cacheMetrics)
		if err == nil {
			err = reg.WriteCSV(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure4: cache-metrics: %v\n", err)
			os.Exit(1)
		}
	}
}
