// Command figure4 regenerates Figure 4 of the paper: execution-time
// speedup of LogTM-SE variants (Perfect, BS, CBS, DBS at 2 Kb, BS_64)
// normalized to the lock-based baseline, for each of the five benchmarks.
//
// Usage:
//
//	figure4 [-scale 1.0] [-seeds 3] [-threads 32] [-workloads all] [-j N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"logtmse"
	"logtmse/internal/obs"
	"logtmse/internal/stats"
)

func main() {
	scale := flag.Float64("scale", 1.0, "input scale relative to the paper's (1.0 = Table 2 inputs)")
	seeds := flag.Int("seeds", 3, "number of pseudo-random perturbations per cell (95% CIs)")
	threads := flag.Int("threads", 0, "worker threads (0 = all 32 contexts)")
	names := flag.String("workloads", "all", "comma-separated benchmark names or 'all'")
	jobs := flag.Int("j", 0, "parallel simulation cells (0 = GOMAXPROCS); results are identical for any -j")
	useCache := flag.Bool("cache", false, "memoize cell results by fingerprint (in-memory; output is byte-identical either way)")
	cacheDir := flag.String("cache-dir", "", "persist cached cell results in this directory across invocations (implies -cache)")
	cacheMetrics := flag.String("cache-metrics", "", "write the cache hit/miss/eviction counters as a metrics CSV here (summarize with txviz -metrics)")
	serveAddr := flag.String("serve", "", "serve live /metrics and /progress on this address during the sweep")
	flag.Parse()
	cache := logtmse.CacheFromFlags(*useCache, *cacheDir)

	var sel []string
	if *names == "all" {
		for _, w := range logtmse.Workloads() {
			sel = append(sel, w.Name)
		}
	} else {
		sel = strings.Split(*names, ",")
	}
	seedList := make([]int64, *seeds)
	for i := range seedList {
		seedList[i] = int64(i + 1)
	}

	variants := logtmse.Figure4Variants()
	var camp *logtmse.Campaign
	if *serveAddr != "" {
		camp = logtmse.NewCampaign("figure4", len(sel)*len(variants)*len(seedList))
		if cache != nil {
			camp.CacheStats = func() (hits, misses uint64) {
				s := cache.Stats()
				return s.Hits, s.Misses
			}
		}
		bound, stop, err := logtmse.ServeCampaign(*serveAddr, camp)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure4: -serve: %v\n", err)
			os.Exit(2)
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "serving /metrics and /progress on http://%s\n", bound)
	}
	fmt.Println("Figure 4: Speedup normalized to locks (higher is better)")
	fmt.Printf("scale=%.2f seeds=%d\n\n", *scale, *seeds)
	header := fmt.Sprintf("%-12s", "Benchmark")
	for _, v := range variants {
		header += fmt.Sprintf("%10s", v.Name)
	}
	fmt.Println(header)

	for _, name := range sel {
		params := logtmse.DefaultParams()
		row, err := logtmse.Figure4Observed(name, *scale, seedList, &params, *threads, *jobs, cache, camp)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure4: %v\n", err)
			os.Exit(1)
		}
		line := fmt.Sprintf("%-12s", name)
		for _, v := range variants {
			line += fmt.Sprintf("%7.2f±%-4.2f", row.Speedup[v.Name], row.CI[v.Name])
		}
		fmt.Println(line)
		// ASCII bars.
		for _, v := range variants {
			fmt.Printf("    %-8s |%s\n", v.Name, stats.Bar(row.Speedup[v.Name], 2.0, 48))
		}
		fmt.Println()
	}
	if cache != nil {
		fmt.Fprintln(os.Stderr, logtmse.CacheSummary(cache))
	}
	if *cacheMetrics != "" {
		if cache == nil {
			fmt.Fprintln(os.Stderr, "figure4: -cache-metrics needs -cache or -cache-dir")
			os.Exit(2)
		}
		reg := obs.NewRegistry()
		cache.Bind(reg)
		reg.Snapshot(0)
		f, err := os.Create(*cacheMetrics)
		if err == nil {
			err = reg.WriteCSV(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure4: cache-metrics: %v\n", err)
			os.Exit(1)
		}
	}
}
