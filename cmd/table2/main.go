// Command table2 regenerates Table 2 of the paper: benchmarks, inputs,
// units of work, measured transactions, and read-/write-set sizes
// (average and maximum, in 64-byte cache lines) under perfect signatures.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"logtmse"
	"logtmse/internal/sweep"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	scale := flag.Float64("scale", 1.0, "input scale (1.0 = paper inputs)")
	seed := flag.Int64("seed", 1, "perturbation seed")
	jobs := flag.Int("j", 0, "parallel simulation cells (0 = GOMAXPROCS); output is identical for any -j")
	useCache := flag.Bool("cache", false, "memoize cell results by fingerprint (output is byte-identical either way)")
	cacheDir := flag.String("cache-dir", "", "persist cached cell results in this directory across invocations (implies -cache)")
	sharePrefix := flag.Bool("share-prefix", false, "route cells through the prefix-shared runner; Table 2 has one cell per benchmark so every group is a singleton and nothing is forked (accepted for sweep-script uniformity)")
	flag.Parse()
	cache := logtmse.CacheFromFlags(*useCache, *cacheDir)

	v, _ := logtmse.VariantByName("Perfect")
	fmt.Println("Table 2: Benchmarks and Inputs (measured with perfect signatures)")
	fmt.Printf("%-12s %-22s %-18s %6s %12s %9s %9s %10s %10s\n",
		"Benchmark", "Input", "Unit of Work", "Units", "Transactions",
		"Read Avg", "Read Max", "Write Avg", "Write Max")
	type cell struct {
		res logtmse.RunResult
		err error
	}
	workloads := logtmse.Workloads()
	rcFor := func(i int) logtmse.RunConfig {
		return logtmse.RunConfig{
			Workload: workloads[i].Name, Variant: v, Scale: *scale, Cache: cache,
		}
	}
	var rows []cell
	var err error
	if *sharePrefix {
		group := make([]logtmse.SweepCell, len(workloads))
		for i := range workloads {
			group[i] = logtmse.SweepCell{RC: rcFor(i), Seed: *seed}
		}
		var results []logtmse.RunResult
		results, err = logtmse.RunCellsShared(ctx, group, *jobs)
		for i := range results {
			rows = append(rows, cell{res: results[i]})
		}
	} else {
		rows, err = sweep.Map(ctx, len(workloads), *jobs, func(i int) cell {
			res, err := logtmse.RunOne(rcFor(i), *seed)
			return cell{res: res, err: err}
		})
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "table2: %v\n", err)
		if errors.Is(err, context.Canceled) {
			os.Exit(130)
		}
		os.Exit(1)
	}
	for i, w := range workloads {
		if rows[i].err != nil {
			fmt.Fprintf(os.Stderr, "table2: %v\n", rows[i].err)
			os.Exit(1)
		}
		res, st := rows[i].res, rows[i].res.Stats
		fmt.Printf("%-12s %-22s %-18s %6d %12d %9.1f %9d %10.1f %10d\n",
			w.Name, w.Input, w.UnitOfWork, res.WorkUnits, st.Commits,
			st.ReadSetAvg(), st.ReadSetMax, st.WriteSetAvg(), st.WriteSetMax)
	}
	if cache != nil {
		fmt.Fprintln(os.Stderr, logtmse.CacheSummary(cache))
	}
	fmt.Println("\nPaper reference (Table 2):")
	fmt.Println("  BerkeleyDB  128 units,  1,120 txns, read 8.1/30,  write 6.8/28")
	fmt.Println("  Cholesky      1 unit,     261 txns, read 4.0/4,   write 2.0/2")
	fmt.Println("  Radiosity   512 units, 11,172 txns, read 2.0/25,  write 1.5/45")
	fmt.Println("  Raytrace      1 unit,  47,781 txns, read 5.8/550, write 2.0/3")
	fmt.Println("  Mp3d        512 units, 17,733 txns, read 2.2/18,  write 1.7/10")
}
