// Command vtable exercises the virtualization events of Table 4 on the
// LogTM-SE implementation and reports what each costs: cache misses and
// commits stay simple-hardware operations after virtualization, cache
// eviction needs no action (sticky states), aborts and paging run short
// software handlers, and thread switches save/restore signatures and
// push summary signatures.
package main

import (
	"flag"
	"fmt"
	"os"

	"logtmse"
	"logtmse/internal/addr"
	"logtmse/internal/core"
	"logtmse/internal/osm"
)

func main() {
	seed := flag.Int64("seed", 1, "perturbation seed")
	flag.Parse()

	params := logtmse.DefaultParams()
	params.Seed = *seed
	sys, err := core.NewSystem(params)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vtable: %v\n", err)
		os.Exit(1)
	}
	sched := osm.New(sys, 0)
	proc := sched.NewProcess("P")

	X := addr.VAddr(0x10_0000)
	Y := addr.VAddr(0x20_0000)

	// Thread 1: a long transaction that gets context-switched, migrated,
	// and survives a page relocation before committing.
	victim := sched.Spawn(proc, "victim", func(a *core.API) {
		a.Transaction(func() {
			// A write set larger than one L1 way-set span forces
			// transactional victimization (sticky states).
			for i := 0; i < 600; i++ {
				a.Store(X+addr.VAddr(i)*addr.BlockBytes, uint64(i))
			}
			a.Compute(60_000) // descheduled and paged while here
			a.Store(X, 999)
		})
	})
	// Thread 2: conflicts with the descheduled transaction (summary
	// signature), and creates an abort via an AB-BA cycle with thread 3.
	sched.Spawn(proc, "worker2", func(a *core.API) {
		a.Compute(5_000)
		_ = a.Load(X) // blocked by the summary signature until commit
		a.Transaction(func() {
			a.Store(Y, a.Load(Y)+1)
			a.Compute(3_000)
			a.Store(Y+addr.BlockBytes, 1)
		})
	})
	sched.Spawn(proc, "worker3", func(a *core.API) {
		a.Compute(5_000)
		_ = a.Load(X) // released together with worker2 at commit time
		a.Transaction(func() {
			a.Store(Y+addr.BlockBytes, a.Load(Y+addr.BlockBytes)+1)
			a.Compute(3_000)
			a.Store(Y, 2)
		})
	})

	sched.DeschedulePlusMigrate(victim, 5, 0, 30_000,
		func(u *core.Thread) bool { return u.InTx() && u.WriteSetSize() >= 600 })
	sys.Engine.Schedule(10_000, func() {
		if err := sched.RelocatePage(proc, X); err != nil {
			fmt.Fprintf(os.Stderr, "vtable: relocate: %v\n", err)
			os.Exit(1)
		}
	})

	sys.Run()
	if !sys.AllDone() {
		fmt.Fprintf(os.Stderr, "vtable: stuck threads: %v\n", sys.Stuck())
		os.Exit(1)
	}
	st := sys.Stats()
	os.Exit(func() int {
		fmt.Println("Table 4 — LogTM-SE virtualization events (measured)")
		fmt.Printf("%-22s %-38s %s\n", "Event", "LogTM-SE action (paper row)", "Observed")
		row := func(ev, action, observed string) {
			fmt.Printf("%-22s %-38s %s\n", ev, action, observed)
		}
		ost := sched.Stats()
		row("$ Miss (after virt.)", "- (plain hardware)",
			fmt.Sprintf("%d misses, 0 software traps", st.Coh.L1Misses))
		row("Commit (after virt.)", "S (summary recompute trap)",
			fmt.Sprintf("%d commits, %d summary-recompute traps", st.Commits, ost.SummaryCommits))
		row("Abort", "S+C (software log walk)",
			fmt.Sprintf("%d aborts (AB-BA cycle), %d undo records written", st.Aborts, st.LogRecords))
		row("$ Eviction", "- (sticky states)",
			fmt.Sprintf("%d sticky evictions, 0 data copies", st.Coh.StickyEvicts))
		row("Paging", "S (signature re-insert)",
			fmt.Sprintf("%d relocations, %d signature blocks moved", ost.PageRelocations, ost.SigBlocksMoved))
		row("Thread switch", "S (save sigs, push summary)",
			fmt.Sprintf("%d switches, %d migrations, %d summary installs",
				ost.ContextSwitches, ost.Migrations, ost.SummaryInstalls))
		fmt.Printf("\nSummary conflicts caught while descheduled: %d\n", st.SummaryConflicts)
		if st.SummaryConflicts == 0 || ost.SigBlocksMoved == 0 || st.Coh.StickyEvicts == 0 || st.Aborts == 0 {
			fmt.Println("WARNING: some virtualization paths were not exercised")
			return 1
		}
		fmt.Println("All virtualization events exercised; invariants held.")
		return 0
	}())
}
