package main

import (
	"context"
	"encoding/json"
	"testing"

	"logtmse/internal/core"
	"logtmse/internal/memo"
	"logtmse/internal/progen"
	"logtmse/internal/sweep"
)

func testOpts() runOpts {
	return runOpts{
		Checks:    true,
		Watchdog:  300_000,
		MaxCycles: 2_000_000,
	}
}

// TestCampaignSmoke runs a small slice of the real campaign across the
// full matrix: every seed must agree with the reference model in every
// cell. This is the harness's own tier-1 gate; the 500-seed campaign
// runs in CI.
func TestCampaignSmoke(t *testing.T) {
	cfgs := matrix()
	opts := testOpts()
	for seed := int64(1); seed <= 30; seed++ {
		rec := runSeed(seed, cfgs, opts, nil, 300)
		if !rec.OK {
			detail := "(no divergence record)"
			if rec.Divergence != nil {
				detail = rec.Divergence.Config + ": " + rec.Divergence.Detail
			}
			t.Fatalf("seed %d diverged: %s", seed, detail)
		}
		if rec.Txs == 0 {
			t.Fatalf("seed %d generated a program with no transactions", seed)
		}
	}
}

// TestEngineBugRegressions replays the campaign seeds that exposed real
// engine bugs when the differential harness first ran, pinning their
// fixes: 178/203/284/299 caught sticky owners being released while the
// victimized block was still in the owner's signature (licensing a
// silent, unchecked E->M store); 185/234 caught fixed two-level
// nested-abort unwinding churning for 300k+ cycles without releasing
// the contended outer footprint; 302 caught the pre-access summary
// check aborting on an unarbitrable Bloom alias of a rescheduled
// thread's saved signature, livelocking permanently.
func TestEngineBugRegressions(t *testing.T) {
	cfgs := matrix()
	opts := testOpts()
	for _, seed := range []int64{178, 185, 203, 234, 284, 299, 302} {
		rec := runSeed(seed, cfgs, opts, nil, 300)
		if !rec.OK {
			detail := "(no divergence record)"
			if rec.Divergence != nil {
				detail = rec.Divergence.Config + ": " + rec.Divergence.Detail
			}
			t.Errorf("regression seed %d diverged again: %s", seed, detail)
		}
	}
}

// TestSabotageCaught proves the harness is not blind: with the engine's
// undo walk deliberately skipping one record per aborted frame, the
// campaign must report a divergence and shrink it to a tiny repro.
func TestSabotageCaught(t *testing.T) {
	cfgs := matrix()
	opts := testOpts()
	opts.Sabotage = core.Sabotage{SkipUndoRecord: true}
	caught := 0
	minOps := 1 << 30
	for seed := int64(1); seed <= 24 && caught < 3; seed++ {
		rec := runSeed(seed, cfgs, opts, nil, 300)
		if rec.OK {
			continue
		}
		caught++
		if rec.Divergence == nil {
			t.Fatalf("seed %d failed without a divergence record", seed)
		}
		if rec.Divergence.MinOps < minOps {
			minOps = rec.Divergence.MinOps
		}
		var min progen.Program
		if err := json.Unmarshal(rec.Divergence.MinProgram, &min); err != nil {
			t.Fatalf("seed %d: minimized program does not parse: %v", seed, err)
		}
		if err := min.Validate(); err != nil {
			t.Fatalf("seed %d: minimized program invalid: %v", seed, err)
		}
	}
	if caught == 0 {
		t.Fatal("sabotaged engine produced no divergence over 24 seeds — the harness is blind")
	}
	if minOps > 6 {
		t.Fatalf("smallest shrunk sabotage repro has %d ops, want <= 6", minOps)
	}
}

// TestParallelByteIdentity pins the determinism contract: the same seeds
// produce byte-identical reports for -j 1 and parallel execution.
func TestParallelByteIdentity(t *testing.T) {
	cfgs := matrix()
	opts := testOpts()
	seeds := campaignSeeds(1, 12)
	runAll := func(jobs int) []byte {
		runs, err := sweep.Map(context.Background(), len(seeds), jobs, func(i int) seedRecord {
			return runSeed(seeds[i], cfgs, opts, nil, 300)
		})
		if err != nil {
			t.Fatal(err)
		}
		buf, err := json.Marshal(runs)
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	serial := runAll(1)
	parallel := runAll(8)
	if string(serial) != string(parallel) {
		t.Fatal("parallel campaign report differs from serial")
	}
}

// TestCacheByteIdentity pins the memoization contract: cold, warm and
// uncached runs of the same cell return identical outcomes.
func TestCacheByteIdentity(t *testing.T) {
	cfgs := matrix()
	opts := testOpts()
	cache := memo.New(t.TempDir(), 64<<20)
	prog := progen.Generate(7, progen.DeriveGenConfig(7))
	for _, cfg := range cfgs[:3] {
		plain, err := runCfg(prog, cfg, 7, opts, nil)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		cold, err := runCfg(prog, cfg, 7, opts, cache)
		if err != nil {
			t.Fatalf("%s cold: %v", cfg.Name, err)
		}
		warm, err := runCfg(prog, cfg, 7, opts, cache)
		if err != nil {
			t.Fatalf("%s warm: %v", cfg.Name, err)
		}
		pj, _ := json.Marshal(plain)
		cj, _ := json.Marshal(cold)
		wj, _ := json.Marshal(warm)
		if string(pj) != string(cj) || string(cj) != string(wj) {
			t.Fatalf("%s: outcomes differ across cache modes", cfg.Name)
		}
	}
}

// TestOracleRejectsTamperedOutcome checks the oracle itself has teeth:
// corrupting a clean outcome's witness, memory or commit count must trip
// the corresponding check.
func TestOracleRejectsTamperedOutcome(t *testing.T) {
	cfg, ok := configByName("perfect-16c")
	if !ok {
		t.Fatal("matrix lost the perfect-16c cell")
	}
	opts := testOpts()
	prog := progen.Generate(3, progen.DeriveGenConfig(3))
	out, err := runSim(prog, cfg, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	if d := oracleCheck(prog, cfg, out); d != "" {
		t.Fatalf("clean run failed the oracle: %s", d)
	}
	tamper := func(name string, mutate func(*simOutcome)) {
		c := *out
		c.Order = append([]int(nil), out.Order...)
		c.Shared = append([]uint64(nil), out.Shared...)
		c.TxReads = make([][]uint64, len(out.TxReads))
		for i := range out.TxReads {
			c.TxReads[i] = append([]uint64(nil), out.TxReads[i]...)
		}
		mutate(&c)
		if oracleCheck(prog, cfg, &c) == "" {
			t.Errorf("oracle accepted outcome with %s", name)
		}
	}
	tamper("flipped witness bit", func(c *simOutcome) {
		for i := range c.TxReads {
			if len(c.TxReads[i]) > 0 {
				c.TxReads[i][0] ^= 1
				return
			}
		}
	})
	tamper("corrupted shared slot", func(c *simOutcome) { c.Shared[0] += 17 })
	tamper("dropped commit", func(c *simOutcome) { c.Order = c.Order[:len(c.Order)-1] })
	tamper("engine error", func(c *simOutcome) { c.Err = "boom" })
}

// TestWatchdogBackstop: the per-run cycle backstop turns a hung cell
// into an explained error instead of a stuck test process.
func TestMaxCyclesBackstop(t *testing.T) {
	cfg, ok := configByName("perfect-16c")
	if !ok {
		t.Fatal("matrix lost the perfect-16c cell")
	}
	opts := testOpts()
	opts.MaxCycles = 50 // absurdly small: every program overruns it
	prog := progen.Generate(5, progen.DeriveGenConfig(5))
	out, err := runSim(prog, cfg, 5, opts)
	if err != nil {
		t.Fatal(err)
	}
	if out.Err == "" {
		t.Fatal("50-cycle budget did not trip the backstop")
	}
}

// TestMatrixNamesUnique guards the report schema: cell names key the
// cache and the cross-config oracle.
func TestMatrixNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range matrix() {
		if seen[c.Name] {
			t.Fatalf("duplicate matrix cell name %q", c.Name)
		}
		seen[c.Name] = true
		if _, ok := configByName(c.Name); !ok {
			t.Fatalf("configByName cannot resolve %q", c.Name)
		}
	}
	if len(seen) < 5 {
		t.Fatalf("matrix shrank to %d cells", len(seen))
	}
}
