package main

import (
	"fmt"

	"logtmse/internal/addr"
	"logtmse/internal/check"
	"logtmse/internal/coherence"
	"logtmse/internal/core"
	"logtmse/internal/fault"
	"logtmse/internal/obs"
	"logtmse/internal/osm"
	"logtmse/internal/progen"
	"logtmse/internal/sig"
	"logtmse/internal/sim"
)

// simConfig is one cell of the differential matrix: a signature design,
// a machine shape, a coherence protocol, and an optional fault mix. Every
// cell must produce an execution equivalent to the sequential reference
// model — that equivalence, not any particular performance number, is
// what the matrix checks.
type simConfig struct {
	Name     string
	Sig      sig.Config
	Cores    int
	SMT      int
	GridW    int
	GridH    int
	Protocol coherence.Protocol
	// Mix names a fault mix from internal/fault ("" = no faults).
	Mix string
	// OS runs the program oversubscribed under the internal/osm
	// scheduler (2 cores x 2 SMT for up to 6 program threads), so
	// deschedules exercise summary signatures and sticky states; it is
	// required for the sched/storm mixes, which bind to the scheduler.
	OS bool
}

// matrix returns the configuration matrix every seed runs through.
// Non-OS cells provide at least 8 hardware contexts so the largest
// generated program (6 threads) places without a scheduler.
func matrix() []simConfig {
	return []simConfig{
		{Name: "perfect-16c", Sig: sig.Config{Kind: sig.KindPerfect}, Cores: 16, SMT: 1, GridW: 4, GridH: 4},
		{Name: "bs64-8c-delay", Sig: sig.Config{Kind: sig.KindBitSelect, Bits: 64}, Cores: 8, SMT: 1, GridW: 4, GridH: 2, Mix: "delay"},
		{Name: "bs1024-4c-aborts", Sig: sig.Config{Kind: sig.KindBitSelect, Bits: 1024}, Cores: 4, SMT: 2, GridW: 2, GridH: 2, Mix: "aborts"},
		{Name: "cbs2048-8c-victims-snoop", Sig: sig.Config{Kind: sig.KindCoarseBitSelect, Bits: 2048}, Cores: 8, SMT: 1, GridW: 4, GridH: 2, Protocol: coherence.Snoop, Mix: "victims"},
		{Name: "h3-4c-signoise", Sig: sig.Config{Kind: sig.KindH3, Bits: 512}, Cores: 4, SMT: 2, GridW: 2, GridH: 2, Mix: "signoise"},
		{Name: "bs256-os-sched", Sig: sig.Config{Kind: sig.KindBitSelect, Bits: 256}, Cores: 2, SMT: 2, GridW: 2, GridH: 1, Mix: "sched", OS: true},
		{Name: "perfect-os-storm", Sig: sig.Config{Kind: sig.KindPerfect}, Cores: 2, SMT: 2, GridW: 2, GridH: 1, Mix: "storm", OS: true},
	}
}

func configByName(name string) (simConfig, bool) {
	for _, c := range matrix() {
		if c.Name == name {
			return c, true
		}
	}
	return simConfig{}, false
}

// Address layout. Shared slots sit one per block with a two-block gap,
// so neighboring slots land in one macroblock (coarse signatures must
// prove their extra conflicts are still semantics-preserving). Each
// thread owns a 1 MiB region holding its private slots and, at a fixed
// offset, its scratch slots.
const (
	sharedBase   = addr.VAddr(0x10_0000)
	sharedStride = 3 * addr.BlockBytes
	threadBase   = addr.VAddr(0x100_0000)
	threadStride = addr.VAddr(0x10_0000)
	scratchOff   = addr.VAddr(0x8_0000)
)

func sharedVA(slot int) addr.VAddr {
	return sharedBase + addr.VAddr(slot*sharedStride)
}

func privVA(tid, slot int) addr.VAddr {
	return threadBase + addr.VAddr(tid)*threadStride + addr.VAddr(slot*addr.BlockBytes)
}

func scratchVA(tid, slot int) addr.VAddr {
	return threadBase + addr.VAddr(tid)*threadStride + scratchOff + addr.VAddr(slot*addr.BlockBytes)
}

// runOpts carries per-run knobs orthogonal to the config cell.
type runOpts struct {
	// Sabotage deliberately breaks the engine (harness self-validation).
	Sabotage core.Sabotage
	// Checks arms the runtime invariant oracles. Disabled automatically
	// under sabotage: the oracles would catch the broken undo walk
	// themselves, and the point of a sabotage run is to prove the
	// differential comparison alone detects it.
	Checks    bool
	Watchdog  sim.Cycle
	MaxCycles sim.Cycle
	// Trace, if set, receives the engine's per-event trace lines
	// (difftest -repro file -trace debugging).
	Trace core.TraceFunc
	// Extra, if set, is teed into the lifecycle event stream alongside
	// the commit-order sink (live campaign telemetry; -serve).
	Extra obs.Sink
	// Metrics, if set, is attached to every system for interval
	// snapshots (-metrics-out). The registry is single-goroutine: the
	// campaign must run serially when set.
	Metrics *obs.CoreMetrics
}

// simOutcome is everything one simulator run exposes to the oracles.
type simOutcome struct {
	// Order lists the software thread id of every outermost commit, in
	// engine order — the serial order the reference model replays.
	Order []int
	// TxReads is each thread's witness-register value at each of its
	// outermost commits, in program order.
	TxReads [][]uint64
	// Shared and Priv are the final memory images (scratch excluded).
	Shared []uint64
	Priv   [][]uint64

	Cycles        sim.Cycle
	Stats         core.Stats
	Faults        map[string]uint64
	CheckFailures []string
	// Err describes a run-level failure (stuck threads, oracle error);
	// empty for a clean run.
	Err string
}

// runSim executes the program on the full simulator under one matrix
// cell. A non-nil error marks a harness bug (bad config); behavioral
// failures land in simOutcome.Err so the driver can report them per run.
func runSim(prog *progen.Program, cfg simConfig, seed int64, opts runOpts) (*simOutcome, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	params := core.DefaultParams()
	params.Seed = seed
	params.Cores = cfg.Cores
	params.ThreadsPerCore = cfg.SMT
	params.GridW, params.GridH = cfg.GridW, cfg.GridH
	params.Signature = cfg.Sig
	params.Protocol = cfg.Protocol
	// Small caches: the programs touch a few dozen blocks, and small
	// arrays force more evictions (sticky states, log-filter pressure).
	params.L1Bytes = 8 * 1024
	params.L2Bytes = 256 * 1024
	params.L2Banks = 4
	// Aliasing-heavy cells can livelock transiently; shed starving
	// transactions instead of spinning into the watchdog.
	params.StarvationRetryLimit = 200

	out := &simOutcome{}
	var order []int
	params.Sink = obs.FuncSink(func(e obs.Event) {
		// Depth 1 marks outermost commits only; an injected abort at the
		// commit point never reaches this event.
		if e.Kind == obs.KindTxCommit && e.Depth == 1 {
			order = append(order, e.TID)
		}
		if opts.Trace != nil && e.Kind == obs.KindFaultInject {
			opts.Trace(e.Cycle, "fault",
				fmt.Sprintf("inject %v addr=%v arg=%d", fault.Class(e.Arg), e.Addr, e.Arg2))
		}
	})
	if opts.Extra != nil {
		params.Sink = obs.Tee(params.Sink, opts.Extra)
	}

	sys, err := core.NewSystem(params)
	if err != nil {
		return nil, fmt.Errorf("difftest: config %s: %w", cfg.Name, err)
	}
	if opts.Metrics != nil {
		sys.AttachMetrics(opts.Metrics, 10_000)
	}
	sys.Sabotage = opts.Sabotage
	sys.Tracer = opts.Trace
	var chk *check.Checker
	if opts.Checks && !opts.Sabotage.Active() {
		chk = sys.AttachChecker(check.All(opts.Watchdog))
	}

	nt := len(prog.Threads)
	txReads := make([][]uint64, nt)
	body := func(ti int) func(*core.API) {
		return func(a *core.API) {
			ex := &simExec{a: a, prog: prog, tid: ti, r: progen.InitReg(ti)}
			ex.runTop(prog.Threads[ti].Ops, &txReads[ti])
		}
	}

	var pt interface {
		Translate(addr.VAddr) addr.PAddr
	}
	var inj *fault.Injector
	if cfg.OS {
		sched := osm.New(sys, 2_000)
		sched.DeferInTxFactor = 0 // allow mid-transaction preemption
		proc := sched.NewProcess("difftest")
		pt = proc.PT
		for ti := 0; ti < nt; ti++ {
			sched.Spawn(proc, fmt.Sprintf("t%d", ti), body(ti))
		}
		if cfg.Mix != "" {
			plan, err := fault.MixPlan(cfg.Mix, seed*7919+13)
			if err != nil {
				return nil, err
			}
			inj = fault.New(plan, sys)
			inj.BindOS(sched, proc)
			inj.Arm()
		}
	} else {
		if nt > cfg.Cores*cfg.SMT {
			return nil, fmt.Errorf("difftest: config %s: %d threads exceed %d contexts",
				cfg.Name, nt, cfg.Cores*cfg.SMT)
		}
		spt := sys.NewPageTable(1)
		pt = spt
		for ti := 0; ti < nt; ti++ {
			if _, err := sys.SpawnOn(ti%cfg.Cores, ti/cfg.Cores, fmt.Sprintf("t%d", ti), 1, spt, body(ti)); err != nil {
				return nil, fmt.Errorf("difftest: config %s: %w", cfg.Name, err)
			}
		}
		if cfg.Mix != "" {
			plan, err := fault.MixPlan(cfg.Mix, seed*7919+13)
			if err != nil {
				return nil, err
			}
			inj = fault.New(plan, sys)
			inj.Arm()
		}
	}

	end := sys.RunUntil(opts.MaxCycles)
	out.Cycles = end
	out.Stats = sys.Stats()
	if inj != nil {
		out.Faults = inj.Stats().ByClass()
	}
	if chk != nil {
		for _, f := range chk.Failures() {
			out.CheckFailures = append(out.CheckFailures, f.String())
		}
	}
	if !sys.AllDone() {
		out.Err = fmt.Sprintf("threads stuck after %d cycles: %v", end, sys.Stuck())
		return out, nil
	}

	out.Order = order
	out.TxReads = txReads
	out.Shared = make([]uint64, prog.Shared)
	for i := range out.Shared {
		out.Shared[i] = sys.Mem.ReadWord(pt.Translate(sharedVA(i)))
	}
	out.Priv = make([][]uint64, nt)
	for ti := 0; ti < nt; ti++ {
		out.Priv[ti] = make([]uint64, prog.Priv)
		for j := range out.Priv[ti] {
			out.Priv[ti][j] = sys.Mem.ReadWord(pt.Translate(privVA(ti, j)))
		}
	}
	return out, nil
}

// simExec interprets one thread's IR over the core.API, maintaining the
// witness register exactly as the reference model does.
type simExec struct {
	a    *core.API
	prog *progen.Program
	tid  int
	r    uint64
}

// runTop runs the thread's top-level ops, appending the witness value to
// reads after each outermost transaction returns (i.e. truly committed —
// Transaction retries internally on abort, including aborts injected at
// the commit point).
func (ex *simExec) runTop(ops []progen.Op, reads *[]uint64) {
	for _, op := range ops {
		if op.Kind == progen.OpTx {
			ex.runTx(op)
			*reads = append(*reads, ex.r)
			continue
		}
		ex.runOp(op)
	}
}

// runTx executes one OpTx. The witness register snapshots before the
// transaction and restores at the top of every (re-)execution, mirroring
// the register checkpoint the engine restores on abort.
func (ex *simExec) runTx(op progen.Op) {
	snap := ex.r
	fn := func() {
		ex.r = snap
		for _, sub := range op.Sub {
			ex.runOp(sub)
		}
	}
	if op.Open {
		ex.a.OpenTransaction(fn)
	} else {
		ex.a.Transaction(fn)
	}
}

func (ex *simExec) runOp(op progen.Op) {
	a := ex.a
	switch op.Kind {
	case progen.OpLoad:
		ex.r = progen.Mix(ex.r, a.Load(sharedVA(op.Slot)))
	case progen.OpStore:
		a.Store(sharedVA(op.Slot), progen.StoreVal(ex.r, op.Val))
	case progen.OpFetchAdd:
		old := a.FetchAdd(sharedVA(op.Slot), op.Val)
		ex.r = progen.Mix(ex.r, old)
	case progen.OpLoadPriv:
		ex.r = progen.Mix(ex.r, a.Load(privVA(ex.tid, op.Slot)))
	case progen.OpStorePriv:
		v := op.Val
		if !ex.prog.Commutative {
			v = progen.StoreVal(ex.r, op.Val)
		}
		a.Store(privVA(ex.tid, op.Slot), v)
	case progen.OpScratch:
		a.Store(scratchVA(ex.tid, op.Slot), op.Val)
	case progen.OpCompute:
		if op.Cycles > 0 {
			a.Compute(sim.Cycle(op.Cycles))
		}
	case progen.OpEscape:
		a.Escape(func() {
			_ = a.Load(privVA(ex.tid, op.Slot))
			a.Store(scratchVA(ex.tid, op.Slot), op.Val)
		})
	case progen.OpTx:
		ex.runTx(op)
	default:
		panic(fmt.Sprintf("difftest: unknown op kind %v", op.Kind))
	}
}
