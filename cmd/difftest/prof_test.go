package main

import (
	"testing"

	"logtmse/internal/prof"
	"logtmse/internal/progen"
)

// TestProfilerReconcilesAcrossMatrix runs progen-generated programs
// through every matrix cell with a conflict-attribution profiler teed
// into the event stream, and checks the attribution partition sums
// exactly to the engine's own conflict totals in every cell — including
// the OS cells, whose deschedules exercise summary signatures and
// sticky carryover, and the fault cells, whose injected aborts must not
// disturb the conflict-abort identity.
func TestProfilerReconcilesAcrossMatrix(t *testing.T) {
	cfgs := matrix()
	opts := testOpts()
	merged := prof.New()
	for seed := int64(1); seed <= 8; seed++ {
		prog := progen.Generate(seed, progen.DeriveGenConfig(seed))
		for _, cfg := range cfgs {
			p := prof.New()
			cellOpts := opts
			cellOpts.Extra = p
			out, err := runSim(prog, cfg, seed, cellOpts)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, cfg.Name, err)
			}
			if out.Err != "" {
				t.Fatalf("seed %d %s: run failed: %s", seed, cfg.Name, out.Err)
			}
			st := out.Stats
			if got := p.Attr.TotalNacks(); got != st.Stalls {
				t.Errorf("seed %d %s: attributed NACKs %d != engine stalls %d",
					seed, cfg.Name, got, st.Stalls)
			}
			if got := p.Attr.FalsePositives(); got != st.FalsePositiveStalls {
				t.Errorf("seed %d %s: attributed false positives %d != engine %d",
					seed, cfg.Name, got, st.FalsePositiveStalls)
			}
			if p.Attr.Summary != st.SummaryConflicts {
				t.Errorf("seed %d %s: attributed summary hits %d != engine %d",
					seed, cfg.Name, p.Attr.Summary, st.SummaryConflicts)
			}
			if p.ConflictAborts != st.PossibleCycleAborts {
				t.Errorf("seed %d %s: conflict aborts %d != possible-cycle aborts %d",
					seed, cfg.Name, p.ConflictAborts, st.PossibleCycleAborts)
			}
			if p.CycleAborts > p.ConflictAborts {
				t.Errorf("seed %d %s: cycle aborts %d exceed conflict aborts %d",
					seed, cfg.Name, p.CycleAborts, p.ConflictAborts)
			}
			merged.Merge(p)
		}
	}
	// The sweep must actually have exercised the interesting machinery.
	if merged.Attr.TotalNacks() == 0 {
		t.Error("matrix sweep produced no NACKs at all")
	}
	if merged.Attr.FalsePositives() == 0 {
		t.Error("matrix sweep produced no signature false positives (aliasing cells expected some)")
	}
}
