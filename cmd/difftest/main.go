// Command difftest differentially tests the LogTM-SE simulator against a
// sequential reference model over randomly generated transaction
// programs.
//
// Each campaign seed generates one program (internal/progen), runs it
// through the full simulator under every cell of a configuration matrix
// (perfect and Bloom signatures, directory and snooping coherence, SMT
// and oversubscribed-OS machines, fault mixes from internal/fault), and
// replays the simulator's observed commit order through the reference
// model (internal/refmodel). The two must agree on every committed
// read-value witness and on the final memory image; commutative programs
// must additionally produce the same final memory in every cell. On a
// divergence the failing program is delta-debug shrunk to a minimal
// repro and embedded in the report.
//
// The report is byte-identical across repeated invocations with the same
// flags, for any -j, and with or without -cache.
//
//	difftest -seeds 500                 # CI campaign
//	difftest -replay 137                # one seed, full matrix
//	difftest -config bs64-8c-delay      # one matrix cell
//	difftest -repro min.json            # re-run a minimized repro file
//	difftest -sabotage -seeds 50        # self-test: must catch the bug
package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"reflect"
	"syscall"

	"logtmse"
	"logtmse/internal/core"
	"logtmse/internal/memo"
	"logtmse/internal/obs"
	"logtmse/internal/prof"
	"logtmse/internal/progen"
	"logtmse/internal/refmodel"
	"logtmse/internal/sig"
	"logtmse/internal/sim"
	"logtmse/internal/sweep"
)

// configRecord is one (seed, matrix cell) outcome.
type configRecord struct {
	Config   string            `json:"config"`
	OK       bool              `json:"ok"`
	Cycles   uint64            `json:"cycles"`
	Commits  int               `json:"commits"`
	Aborts   uint64            `json:"aborts"`
	Stalls   uint64            `json:"stalls,omitempty"`
	FPStalls uint64            `json:"fp_stalls,omitempty"`
	Faults   map[string]uint64 `json:"faults,omitempty"`
	Error    string            `json:"error,omitempty"`
}

// divergenceRec documents one divergence with its minimized repro.
type divergenceRec struct {
	Config     string          `json:"config"`
	Detail     string          `json:"detail"`
	OrigOps    int             `json:"orig_ops"`
	MinOps     int             `json:"min_ops"`
	MinDetail  string          `json:"min_detail"`
	MinProgram json.RawMessage `json:"min_program"`
}

// seedRecord is one campaign seed's outcome across the matrix.
type seedRecord struct {
	Seed        int64          `json:"seed"`
	Commutative bool           `json:"commutative,omitempty"`
	Threads     int            `json:"threads"`
	Txs         int            `json:"txs"`
	Ops         int            `json:"ops"`
	OK          bool           `json:"ok"`
	Configs     []configRecord `json:"configs"`
	Divergence  *divergenceRec `json:"divergence,omitempty"`
}

type report struct {
	Campaign    campaign           `json:"campaign"`
	Runs        []seedRecord       `json:"runs"`
	SharePrefix *sharePrefixRecord `json:"share_prefix,omitempty"`
	Summary     summary            `json:"summary"`
}

// sharePrefixRecord is the prefix-shared runner's differential oracle:
// the matrix cells themselves differ in machine shape and fault mix and
// so never share a prefix, but the runner that claims "forked equals
// from-scratch" is exactly the kind of equivalence this command exists
// to break. Each probed (workload, seed) runs a Figure 4-style TM
// variant group through RunShared and through per-cell RunOne; any
// non-identical RunResult is a campaign failure.
type sharePrefixRecord struct {
	Cells      int      `json:"cells"`
	Groups     uint64   `json:"groups"`
	Reused     uint64   `json:"reused"`
	Forked     uint64   `json:"forked"`
	Cold       uint64   `json:"cold"`
	OK         bool     `json:"ok"`
	Mismatches []string `json:"mismatches,omitempty"`
}

type campaign struct {
	SeedBase  int64    `json:"seed_base"`
	Seeds     int      `json:"seeds"`
	Config    string   `json:"config"`
	Matrix    []string `json:"matrix"`
	Sabotage  bool     `json:"sabotage,omitempty"`
	MaxCycles uint64   `json:"max_cycles"`
	Watchdog  uint64   `json:"watchdog_window"`
}

type summary struct {
	Seeds       int     `json:"seeds"`
	Failed      int     `json:"failed"`
	FailedSeeds []int64 `json:"failed_seeds,omitempty"`
	Commits     uint64  `json:"commits"`
	Aborts      uint64  `json:"aborts"`
	MinOpsMax   int     `json:"min_ops_max,omitempty"`
}

func main() {
	os.Exit(run())
}

func run() int {
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	seeds := flag.Int("seeds", 24, "number of campaign seeds")
	seedBase := flag.Int64("seed-base", 1, "first seed")
	configName := flag.String("config", "all", "matrix cell to run (default: the full matrix)")
	replay := flag.Int64("replay", 0, "re-run exactly one campaign seed")
	repro := flag.String("repro", "", "run a program repro file through the matrix instead of generating")
	sabotage := flag.Bool("sabotage", false, "deliberately break the engine's undo walk; the campaign must catch it")
	maxCycles := flag.Int64("max-cycles", 2_000_000, "hang backstop per run (cycles)")
	watchdog := flag.Int64("watchdog", 300_000, "progress-watchdog window (cycles; 0 disables)")
	shrinkBudget := flag.Int("shrink-budget", 300, "predicate evaluations per divergence shrink")
	out := flag.String("out", "", "write the JSON report here (default stdout)")
	verbose := flag.Bool("v", false, "print one line per seed to stderr")
	trace := flag.Bool("trace", false, "stream the engine trace to stderr (repro debugging; use with -repro or -replay and -config)")
	jobs := flag.Int("j", 0, "parallel seeds (0 = GOMAXPROCS); the report is byte-identical for any -j")
	useCache := flag.Bool("cache", false, "memoize per-(seed,config) outcomes (the report is byte-identical either way)")
	cacheDir := flag.String("cache-dir", "", "persist cached outcomes in this directory (implies -cache)")
	metricsOut := flag.String("metrics-out", "", "write the interval metrics time series of the campaign's runs as CSV here (forces -j 1, disables -cache)")
	serveAddr := flag.String("serve", "", "serve live /metrics and /progress on this address during the campaign")
	sharePrefix := flag.Bool("share-prefix", false, "additionally differential-test the prefix-shared sweep runner: run TM variant groups shared and unshared and require bit-identical results")
	flag.Parse()

	cfgs := matrix()
	if *configName != "all" {
		c, ok := configByName(*configName)
		if !ok {
			fmt.Fprintf(os.Stderr, "difftest: unknown config %q (have %v)\n", *configName, configNames())
			return 2
		}
		cfgs = []simConfig{c}
	}
	opts := runOpts{
		Checks:    true,
		Watchdog:  sim.Cycle(*watchdog),
		MaxCycles: sim.Cycle(*maxCycles),
	}
	if *sabotage {
		opts.Sabotage = core.Sabotage{SkipUndoRecord: true}
	}
	if *trace {
		opts.Trace = func(cycle sim.Cycle, thread, event string) {
			fmt.Fprintf(os.Stderr, "%8d %-12s %s\n", cycle, thread, event)
		}
	}
	var cache *memo.Cache
	if *useCache || *cacheDir != "" {
		cache = memo.New(*cacheDir, 256<<20)
	}
	if *metricsOut != "" {
		// One registry shared by every run: serialize the campaign and
		// bypass the cache so every cell actually simulates and feeds
		// the interval snapshots.
		opts.Metrics = obs.NewCoreMetrics(obs.NewRegistry())
		*jobs = 1
		if cache != nil {
			fmt.Fprintln(os.Stderr, "difftest: -metrics-out disables the result cache")
			cache = nil
		}
	}

	rep := report{Campaign: campaign{
		SeedBase: *seedBase, Seeds: *seeds, Config: *configName,
		Matrix: configNames(), Sabotage: *sabotage,
		MaxCycles: uint64(opts.MaxCycles), Watchdog: uint64(opts.Watchdog),
	}}

	if *repro != "" {
		prog, err := progen.Load(*repro)
		if err != nil {
			fmt.Fprintln(os.Stderr, "difftest:", err)
			return 2
		}
		rec := diffProgram(prog, prog.Seed, cfgs, opts, cache, *shrinkBudget)
		rep.Campaign.Seeds = 1
		rep.Campaign.SeedBase = prog.Seed
		rep.Runs = []seedRecord{rec}
	} else {
		list := campaignSeeds(*seedBase, *seeds)
		if *replay != 0 {
			list = []int64{*replay}
			rep.Campaign.Seeds = 1
			rep.Campaign.SeedBase = *replay
		}
		var camp *prof.Campaign
		var begin, end func(i int)
		if *serveAddr != "" {
			camp = prof.NewCampaign("difftest", len(list))
			// Per-cause abort telemetry needs a sink on every run, and a
			// cached run never fires it — attach only on uncached
			// campaigns so the counts stay exact.
			if cache == nil {
				opts.Extra = camp.CountAborts()
			}
			bound, stop, err := prof.Serve(*serveAddr, camp)
			if err != nil {
				fmt.Fprintln(os.Stderr, "difftest: -serve:", err)
				return 2
			}
			defer stop()
			fmt.Fprintf(os.Stderr, "serving /metrics and /progress on http://%s\n", bound)
			begin, end = camp.Hooks()
		}
		runs, err := sweep.MapNotify(ctx, len(list), *jobs, begin, end, func(i int) seedRecord {
			rec := runSeed(list[i], cfgs, opts, cache, *shrinkBudget)
			if camp != nil {
				var commits, aborts, stalls uint64
				for _, c := range rec.Configs {
					commits += uint64(c.Commits)
					aborts += c.Aborts
					stalls += c.Stalls
				}
				camp.RecordRun(commits, aborts, stalls)
				if !rec.OK {
					camp.FailCell()
				}
			}
			return rec
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "difftest:", err)
			if errors.Is(err, context.Canceled) {
				return 130
			}
			return 1
		}
		rep.Runs = runs
	}
	if *sharePrefix {
		rep.SharePrefix = diffSharePrefix(ctx, *seedBase)
		if *verbose {
			status := "ok"
			if !rep.SharePrefix.OK {
				status = "DIVERGED"
			}
			fmt.Fprintf(os.Stderr, "share-prefix %d cells (%d groups, %d reused, %d forked)  %s\n",
				rep.SharePrefix.Cells, rep.SharePrefix.Groups, rep.SharePrefix.Reused, rep.SharePrefix.Forked, status)
		}
	}
	if *verbose {
		for _, rec := range rep.Runs {
			status := "ok"
			if !rec.OK {
				status = "DIVERGED"
				if rec.Divergence != nil {
					status = fmt.Sprintf("DIVERGED [%s] %d -> %d ops: %s",
						rec.Divergence.Config, rec.Divergence.OrigOps, rec.Divergence.MinOps, rec.Divergence.Detail)
				}
			}
			fmt.Fprintf(os.Stderr, "seed %4d  %d thr %2d tx %3d ops  %s\n",
				rec.Seed, rec.Threads, rec.Txs, rec.Ops, status)
		}
	}
	rep.Summary = summarize(rep.Runs)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "difftest:", err)
		return 2
	}
	buf = append(buf, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "difftest:", err)
			return 2
		}
	} else {
		os.Stdout.Write(buf)
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err == nil {
			err = opts.Metrics.Reg.WriteCSV(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "difftest: metrics-out:", err)
			return 2
		}
	}

	if *sabotage {
		// Self-test mode: the harness passes only by catching the bug.
		if rep.Summary.Failed == 0 {
			fmt.Fprintln(os.Stderr, "difftest: sabotaged engine produced no divergence — the harness is blind")
			return 1
		}
		return 0
	}
	if rep.Summary.Failed > 0 {
		return 1
	}
	if rep.SharePrefix != nil && !rep.SharePrefix.OK {
		return 1
	}
	return 0
}

// diffSharePrefix probes the prefix-shared runner over two benchmarks
// and two seeds derived from the campaign base: five TM signature
// variants per group, RunShared versus per-cell RunOne, compared with
// reflect.DeepEqual so any Stats or derived-metric drift is a failure.
func diffSharePrefix(ctx context.Context, seedBase int64) *sharePrefixRecord {
	const scale = 0.05
	names := []string{"Perfect", "BS", "CBS", "DBS", "BS_64"}
	rec := &sharePrefixRecord{OK: true}
	before := logtmse.SharedPrefixStats()
	for _, wl := range []string{"Mp3d", "BerkeleyDB"} {
		for s := int64(0); s < 2; s++ {
			seed := seedBase + s
			var rcs []logtmse.RunConfig
			for _, n := range names {
				v, _ := logtmse.VariantByName(n)
				rcs = append(rcs, logtmse.RunConfig{Workload: wl, Variant: v, Scale: scale})
			}
			shared, err := logtmse.RunShared(ctx, rcs, seed)
			if err != nil {
				rec.OK = false
				rec.Mismatches = append(rec.Mismatches, fmt.Sprintf("%s seed %d: shared run: %v", wl, seed, err))
				continue
			}
			for i, rc := range rcs {
				rec.Cells++
				want, err := logtmse.RunOne(rc, seed)
				if err != nil {
					rec.OK = false
					rec.Mismatches = append(rec.Mismatches, fmt.Sprintf("%s/%s seed %d: unshared run: %v", wl, rc.Variant.Name, seed, err))
					continue
				}
				if !reflect.DeepEqual(shared[i], want) {
					rec.OK = false
					rec.Mismatches = append(rec.Mismatches, fmt.Sprintf(
						"%s/%s seed %d: shared result differs from unshared (shared %+v, unshared %+v)",
						wl, rc.Variant.Name, seed, shared[i], want))
				}
			}
		}
	}
	after := logtmse.SharedPrefixStats()
	rec.Groups = after.Groups - before.Groups
	rec.Reused = after.Reused - before.Reused
	rec.Forked = after.Forked - before.Forked
	rec.Cold = after.Cold - before.Cold
	if rec.Groups == 0 {
		rec.OK = false
		rec.Mismatches = append(rec.Mismatches, "no shared group ran — the probe cells were refused by the shareability gate")
	}
	return rec
}

func configNames() []string {
	var names []string
	for _, c := range matrix() {
		names = append(names, c.Name)
	}
	return names
}

func campaignSeeds(base int64, n int) []int64 {
	out := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, base+int64(i))
	}
	return out
}

func summarize(runs []seedRecord) summary {
	s := summary{Seeds: len(runs)}
	for _, r := range runs {
		if !r.OK {
			s.Failed++
			s.FailedSeeds = append(s.FailedSeeds, r.Seed)
			if r.Divergence != nil && r.Divergence.MinOps > s.MinOpsMax {
				s.MinOpsMax = r.Divergence.MinOps
			}
		}
		for _, c := range r.Configs {
			s.Commits += uint64(c.Commits)
			s.Aborts += c.Aborts
		}
	}
	return s
}

// runSeed generates the seed's program and differential-tests it.
func runSeed(seed int64, cfgs []simConfig, opts runOpts, cache *memo.Cache, shrinkBudget int) seedRecord {
	prog := progen.Generate(seed, progen.DeriveGenConfig(seed))
	return diffProgram(prog, seed, cfgs, opts, cache, shrinkBudget)
}

// diffProgram runs one program through every matrix cell and applies the
// oracles; the first divergence is shrunk to a minimal repro.
func diffProgram(prog *progen.Program, seed int64, cfgs []simConfig, opts runOpts, cache *memo.Cache, shrinkBudget int) seedRecord {
	rec := seedRecord{
		Seed:        seed,
		Commutative: prog.Commutative,
		Threads:     len(prog.Threads),
		Txs:         prog.TotalTxs(),
		Ops:         prog.CountOps(),
		OK:          true,
	}
	type cell struct {
		cfg simConfig
		out *simOutcome
	}
	var clean []cell
	for _, cfg := range cfgs {
		out, err := runCfg(prog, cfg, seed, opts, cache)
		crec := configRecord{Config: cfg.Name}
		if err != nil {
			crec.Error = err.Error()
			rec.Configs = append(rec.Configs, crec)
			rec.OK = false
			continue
		}
		crec.Cycles = uint64(out.Cycles)
		crec.Commits = len(out.Order)
		crec.Aborts = out.Stats.Aborts
		crec.Stalls = out.Stats.Stalls
		crec.FPStalls = out.Stats.FalsePositiveStalls
		crec.Faults = out.Faults
		detail := oracleCheck(prog, cfg, out)
		if detail == "" {
			crec.OK = true
			clean = append(clean, cell{cfg, out})
		} else {
			crec.Error = detail
			rec.OK = false
			if rec.Divergence == nil {
				rec.Divergence = shrinkDivergence(prog, cfg, seed, opts, detail, shrinkBudget)
			}
		}
		rec.Configs = append(rec.Configs, crec)
	}
	// Metamorphic cross-config oracle: a commutative program's final
	// shared memory is independent of commit order, so every clean cell
	// must produce the identical image — perfect vs. Bloom signatures,
	// faults vs. none, 4 vs. 16 cores.
	if prog.Commutative && rec.OK && len(clean) > 1 {
		base := clean[0]
		for _, c := range clean[1:] {
			if d := diffU64s(base.out.Shared, c.out.Shared); d >= 0 {
				detail := fmt.Sprintf("cross-config shared slot %d: %s=%d %s=%d",
					d, base.cfg.Name, base.out.Shared[d], c.cfg.Name, c.out.Shared[d])
				rec.OK = false
				rec.Divergence = shrinkCrossConfig(prog, base.cfg, c.cfg, seed, opts, detail, shrinkBudget)
				break
			}
		}
	}
	return rec
}

// runCfg runs one cell, optionally memoized: the cache key fingerprints
// everything the outcome depends on, and replayed outcomes are
// byte-identical to cold ones.
func runCfg(prog *progen.Program, cfg simConfig, seed int64, opts runOpts, cache *memo.Cache) (*simOutcome, error) {
	if cache == nil {
		return runSim(prog, cfg, seed, opts)
	}
	pj, err := prog.Marshal()
	if err != nil {
		return nil, err
	}
	h := sha256.New()
	// v2: core.Stats gained PossibleCycleAborts, which is serialized in
	// the cached outcome.
	fmt.Fprintf(h, "difftest-v2|%s|%d|%v|%d|%d|", cfg.Name, seed, opts.Sabotage, opts.MaxCycles, opts.Watchdog)
	h.Write(pj)
	key := "difftest-" + hex.EncodeToString(h.Sum(nil))
	payload, _, err := cache.Do(key, func() ([]byte, error) {
		out, err := runSim(prog, cfg, seed, opts)
		if err != nil {
			return nil, err
		}
		return json.Marshal(out)
	})
	if err != nil {
		return nil, err
	}
	var out simOutcome
	if err := json.Unmarshal(payload, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// oracleCheck compares one simulator outcome against the reference model
// and the per-cell invariants; "" means the cell passed.
func oracleCheck(prog *progen.Program, cfg simConfig, out *simOutcome) string {
	if out.Err != "" {
		return out.Err
	}
	if len(out.CheckFailures) > 0 {
		return fmt.Sprintf("invariant oracle: %s (%d failures)", out.CheckFailures[0], len(out.CheckFailures))
	}
	if len(out.Order) != prog.TotalTxs() {
		return fmt.Sprintf("%d outermost commits, want %d", len(out.Order), prog.TotalTxs())
	}
	ref, err := refmodel.Execute(prog, out.Order)
	if err != nil {
		return err.Error()
	}
	for ti := range prog.Threads {
		var got []uint64
		if ti < len(out.TxReads) {
			got = out.TxReads[ti]
		}
		if len(got) != len(ref.TxReads[ti]) {
			return fmt.Sprintf("thread %d committed %d transactions, want %d", ti, len(got), len(ref.TxReads[ti]))
		}
		for i := range got {
			if got[i] != ref.TxReads[ti][i] {
				return fmt.Sprintf("thread %d tx %d read witness: sim=%#x ref=%#x", ti, i, got[i], ref.TxReads[ti][i])
			}
		}
	}
	if d := diffU64s(out.Shared, ref.Shared); d >= 0 {
		return fmt.Sprintf("final shared slot %d: sim=%d ref=%d", d, out.Shared[d], ref.Shared[d])
	}
	for ti := range prog.Threads {
		if d := diffU64s(out.Priv[ti], ref.Priv[ti]); d >= 0 {
			return fmt.Sprintf("thread %d final private slot %d: sim=%d ref=%d", ti, d, out.Priv[ti][d], ref.Priv[ti][d])
		}
	}
	// A perfect signature has no aliasing, so every stall it reports
	// must trace to an exact-set conflict.
	if cfg.Sig.Kind == sig.KindPerfect && out.Stats.FalsePositiveStalls > 0 {
		return fmt.Sprintf("perfect signature reported %d false-positive stalls", out.Stats.FalsePositiveStalls)
	}
	return ""
}

// diffU64s returns the first differing index, or -1.
func diffU64s(a, b []uint64) int {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		var av, bv uint64
		if i < len(a) {
			av = a[i]
		}
		if i < len(b) {
			bv = b[i]
		}
		if av != bv {
			return i
		}
	}
	return -1
}

// shrinkDivergence minimizes a program that diverges in one cell.
func shrinkDivergence(prog *progen.Program, cfg simConfig, seed int64, opts runOpts, detail string, budget int) *divergenceRec {
	pred := func(c *progen.Program) bool {
		out, err := runSim(c, cfg, seed, opts)
		if err != nil {
			return false
		}
		return oracleCheck(c, cfg, out) != ""
	}
	min := progen.Shrink(prog, pred, budget)
	minDetail := detail
	if out, err := runSim(min, cfg, seed, opts); err == nil {
		minDetail = oracleCheck(min, cfg, out)
	}
	return newDivergenceRec(cfg.Name, detail, prog, min, minDetail)
}

// shrinkCrossConfig minimizes a commutative program whose final shared
// memory differs between two cells.
func shrinkCrossConfig(prog *progen.Program, a, b simConfig, seed int64, opts runOpts, detail string, budget int) *divergenceRec {
	crossDiff := func(c *progen.Program) string {
		oa, err := runSim(c, a, seed, opts)
		if err != nil || oracleCheck(c, a, oa) != "" {
			return "" // only a pure cross-config delta counts here
		}
		ob, err := runSim(c, b, seed, opts)
		if err != nil || oracleCheck(c, b, ob) != "" {
			return ""
		}
		if d := diffU64s(oa.Shared, ob.Shared); d >= 0 {
			return fmt.Sprintf("cross-config shared slot %d: %s=%d %s=%d", d, a.Name, oa.Shared[d], b.Name, ob.Shared[d])
		}
		return ""
	}
	min := progen.Shrink(prog, func(c *progen.Program) bool { return crossDiff(c) != "" }, budget)
	minDetail := crossDiff(min)
	if minDetail == "" {
		minDetail = detail
	}
	return newDivergenceRec(a.Name+"/"+b.Name, detail, prog, min, minDetail)
}

func newDivergenceRec(config, detail string, orig, min *progen.Program, minDetail string) *divergenceRec {
	buf, err := min.Marshal()
	if err != nil {
		buf = []byte(`"unmarshalable"`)
	}
	return &divergenceRec{
		Config:     config,
		Detail:     detail,
		OrigOps:    orig.CountOps(),
		MinOps:     min.CountOps(),
		MinDetail:  minDetail,
		MinProgram: json.RawMessage(buf),
	}
}
