// Command logtmsim runs one benchmark on the simulated LogTM-SE machine
// and prints detailed statistics — the general-purpose inspection tool.
//
// Usage:
//
//	logtmsim -workload Raytrace -variant Perfect -scale 0.2 -seed 1
//	logtmsim -print-config          # Table 1 parameters
//	logtmsim -trace-out run.json    # per-core timeline for chrome://tracing
//	logtmsim -metrics-out run.csv   # interval metrics time series
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"logtmse"
)

// writeFile creates path, runs fn on it, and closes it, reporting the
// first error.
func writeFile(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	os.Exit(run())
}

// run carries main's body and returns the exit code, so that deferred
// profile writers fire before the process exits.
func run() int {
	name := flag.String("workload", "BerkeleyDB", "benchmark name (Table 2)")
	variant := flag.String("variant", "Perfect", "Lock | Perfect | BS | CBS | DBS | BS_64")
	scale := flag.Float64("scale", 1.0, "input scale (1.0 = paper inputs)")
	seed := flag.Int64("seed", 1, "random perturbation seed")
	threads := flag.Int("threads", 0, "worker threads (0 = all contexts)")
	compiled := flag.Bool("compiled", true, "run the compiled txvm workload tapes; -compiled=false runs the closure-based reference executor (identical Stats, slower)")
	snoop := flag.Bool("snoop", false, "use the broadcast snooping protocol (§7) instead of the directory")
	chips := flag.Int("chips", 1, "build a multiple-CMP system (§7) with this many chips")
	trace := flag.Int("trace", 0, "print the first N transactional events")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event (catapult) JSON timeline to this file (open in chrome://tracing or Perfetto; summarize with txviz)")
	metricsOut := flag.String("metrics-out", "", "write the interval metrics time series (counters, gauges, histogram percentiles) as CSV to this file")
	metricsInterval := flag.Uint64("metrics-interval", 10000, "metrics snapshot interval in cycles")
	snapEvery := flag.Uint64("snap-every", 0, "capture a full-state snapshot every N cycles and prove the layer on the spot: the last snapshot is restored onto a fresh machine and replayed, and the replay must match bit for bit (needs the compiled executor and no -trace/-trace-out/-metrics-out)")
	asJSON := flag.Bool("json", false, "emit the result as JSON (for scripting)")
	printConfig := flag.Bool("print-config", false, "print the Table 1 system parameters and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile here")
	memprofile := flag.String("memprofile", "", "write a heap profile here at exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "logtmsim: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "logtmsim: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "logtmsim: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "logtmsim: %v\n", err)
			}
		}()
	}

	params := logtmse.DefaultParams()
	if *snoop {
		params.Protocol = logtmse.ProtocolSnoop
	}
	if *chips > 1 {
		params.Chips = *chips
		params.GridW, params.GridH = 2, 2
		params.InterChipLat = 50
	}
	if *printConfig {
		fmt.Println("System Model Settings (Table 1)")
		fmt.Printf("  Processor cores     %d x %d-way SMT (%d thread contexts)\n",
			params.Cores, params.ThreadsPerCore, params.Contexts())
		fmt.Printf("  L1 cache            %d KB %d-way, 64-byte blocks, %d-cycle latency\n",
			params.L1Bytes/1024, params.L1Ways, params.L1HitLat)
		fmt.Printf("  L2 cache            %d MB %d-way, %d banks, %d-cycle latency\n",
			params.L2Bytes/1024/1024, params.L2Ways, params.L2Banks, params.L2Lat)
		fmt.Printf("  Memory              %d-cycle latency\n", params.MemLat)
		fmt.Printf("  L2 directory        full bit-vector sharer list, %d-cycle latency\n", params.DirLat)
		fmt.Printf("  Interconnect        %dx%d grid, 64-byte links, %d-cycle link latency\n",
			params.GridW, params.GridH, params.LinkLat)
		fmt.Printf("  Protocol            %v\n", params.Protocol)
		return 0
	}

	v, ok := logtmse.VariantByName(*variant)
	if !ok {
		fmt.Fprintf(os.Stderr, "logtmsim: unknown variant %q\n", *variant)
		return 1
	}
	var traced int
	var tracer logtmse.TraceFunc
	if *trace > 0 {
		tracer = func(cycle logtmse.Cycle, thread, event string) {
			if traced < *trace {
				fmt.Printf("%10d %-12s %s\n", cycle, thread, event)
				traced++
			}
		}
	}
	var rec *logtmse.Recorder
	if *traceOut != "" {
		rec = &logtmse.Recorder{}
	}
	var metrics *logtmse.CoreMetrics
	if *metricsOut != "" {
		metrics = logtmse.NewCoreMetrics(logtmse.NewRegistry())
	}
	rc := logtmse.RunConfig{
		Workload:        *name,
		Variant:         v,
		Scale:           *scale,
		Threads:         *threads,
		Interpret:       !*compiled,
		Params:          &params,
		Tracer:          tracer,
		Metrics:         metrics,
		MetricsInterval: logtmse.Cycle(*metricsInterval),
	}
	if rec != nil {
		rc.Sink = rec
	}
	var res logtmse.RunResult
	var err error
	if *snapEvery > 0 {
		var sc logtmse.SnapSelfCheck
		res, sc, err = logtmse.RunWithSnapshots(rc, *seed, logtmse.Cycle(*snapEvery))
		if err != nil {
			fmt.Fprintf(os.Stderr, "logtmsim: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "logtmsim: %d snapshots; replay from cycle %d of %d bit-identical\n",
			sc.Snapshots, sc.ResumedFrom, sc.EndCycle)
	} else {
		res, err = logtmse.RunOne(rc, *seed)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "logtmsim: %v\n", err)
		return 1
	}
	if rec != nil {
		if err := writeFile(*traceOut, func(w *os.File) error {
			return logtmse.WriteCatapult(w, rec.Events)
		}); err != nil {
			fmt.Fprintf(os.Stderr, "logtmsim: trace-out: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "logtmsim: wrote %d events to %s\n", len(rec.Events), *traceOut)
	}
	if metrics != nil {
		if err := writeFile(*metricsOut, func(w *os.File) error {
			return metrics.Reg.WriteCSV(w)
		}); err != nil {
			fmt.Fprintf(os.Stderr, "logtmsim: metrics-out: %v\n", err)
			return 1
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Workload      string
			Variant       string
			Scale         float64
			Seed          int64
			Cycles        uint64
			WorkUnits     uint64
			CyclesPerUnit float64
			Stats         logtmse.Stats
		}{*name, v.Name, *scale, *seed, uint64(res.Cycles), res.WorkUnits, res.CyclesPerUnit, res.Stats}); err != nil {
			fmt.Fprintf(os.Stderr, "logtmsim: %v\n", err)
			return 1
		}
		return 0
	}
	st := res.Stats
	fmt.Printf("%s / %s  (scale %.2f, seed %d)\n", *name, v.Name, *scale, *seed)
	fmt.Printf("  cycles               %d\n", res.Cycles)
	fmt.Printf("  work units           %d\n", res.WorkUnits)
	fmt.Printf("  cycles/unit          %.1f\n", res.CyclesPerUnit)
	fmt.Printf("  commits              %d (nested %d, open %d)\n", st.Commits, st.NestedCommits, st.OpenCommits)
	fmt.Printf("  aborts               %d\n", st.Aborts)
	fmt.Printf("  stalls (tx NACKs)    %d (false-positive %.1f%%)\n", st.Stalls, st.FalsePositivePct())
	fmt.Printf("  non-tx retries       %d\n", st.NonTxRetries)
	fmt.Printf("  SMT conflicts        %d, summary conflicts %d\n", st.SMTConflicts, st.SummaryConflicts)
	fmt.Printf("  read set avg/max     %.1f / %d blocks\n", st.ReadSetAvg(), st.ReadSetMax)
	fmt.Printf("  write set avg/max    %.1f / %d blocks\n", st.WriteSetAvg(), st.WriteSetMax)
	fmt.Printf("  log records          %d (filter hits %d, peak log %d B)\n", st.LogRecords, st.LogFilterHits, st.MaxLogBytes)
	fmt.Printf("  loads/stores         %d / %d\n", st.Coh.Loads, st.Coh.Stores)
	fmt.Printf("  L1 hits/misses       %d / %d (upgrades %d)\n", st.Coh.L1Hits, st.Coh.L1Misses, st.Coh.Upgrades)
	fmt.Printf("  L2 misses            %d\n", st.Coh.L2Misses)
	fmt.Printf("  forwards/broadcasts  %d / %d\n", st.Coh.Forwards, st.Coh.Broadcasts)
	fmt.Printf("  protocol NACKs       %d\n", st.Coh.NACKs)
	fmt.Printf("  sticky evicts        %d\n", st.Coh.StickyEvicts)
	fmt.Printf("  tx victims L1/L2     %d / %d\n", st.Coh.L1TxVictims, st.Coh.L2TxVictims)
	fmt.Printf("  writebacks           %d\n", st.Coh.WritebacksToMem)
	return 0
}
