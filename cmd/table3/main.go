// Command table3 regenerates Table 3 of the paper: the impact of
// signature implementation and size on conflict detection for Raytrace
// and BerkeleyDB — transactions, aborts, stalls and the false-positive
// share of conflicts — for Perfect and for BS/CBS/DBS at 2 Kb and 64 bits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"logtmse"
	"logtmse/internal/sig"
	"logtmse/internal/sweep"
	"logtmse/internal/workload"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	scale := flag.Float64("scale", 1.0, "input scale (1.0 = paper inputs)")
	seed := flag.Int64("seed", 1, "perturbation seed")
	jobs := flag.Int("j", 0, "parallel simulation cells (0 = GOMAXPROCS); output is identical for any -j")
	useCache := flag.Bool("cache", false, "memoize cell results by fingerprint (output is byte-identical either way)")
	cacheDir := flag.String("cache-dir", "", "persist cached cell results in this directory across invocations (implies -cache)")
	sharePrefix := flag.Bool("share-prefix", false, "run each benchmark's seven signature cells as one prefix-shared group: simulate once, fork variants from snapshots (output is byte-identical either way)")
	flag.Parse()
	cache := logtmse.CacheFromFlags(*useCache, *cacheDir)

	type cfg struct {
		label string
		sc    sig.Config
	}
	sizes := []int{2048, 64}
	kinds := []struct {
		name string
		kind sig.Kind
	}{
		{"BS", sig.KindBitSelect},
		{"CBS", sig.KindCoarseBitSelect},
		{"DBS", sig.KindDoubleBitSelect},
	}

	for _, bench := range []string{"Raytrace", "BerkeleyDB"} {
		fmt.Printf("Table 3 — %s (scale %.2f)\n", bench, *scale)
		fmt.Printf("%-14s %12s %8s %10s %10s %8s\n",
			"Signature", "Transactions", "Aborts", "Stalls", "Conflicts", "FalsePos%")
		cells := []cfg{{"Perfect", sig.Config{Kind: sig.KindPerfect}}}
		for _, size := range sizes {
			for _, k := range kinds {
				cells = append(cells, cfg{
					label: fmt.Sprintf("%s_%d", k.name, size),
					sc:    sig.Config{Kind: k.kind, Bits: size},
				})
			}
		}
		type cell struct {
			res logtmse.RunResult
			err error
		}
		rcFor := func(i int) logtmse.RunConfig {
			return logtmse.RunConfig{
				Workload: bench,
				Variant:  logtmse.Variant{Name: cells[i].label, Mode: workload.TM, Sig: cells[i].sc},
				Scale:    *scale,
				Cache:    cache,
			}
		}
		var rows []cell
		var err error
		if *sharePrefix {
			group := make([]logtmse.SweepCell, len(cells))
			for i := range cells {
				group[i] = logtmse.SweepCell{RC: rcFor(i), Seed: *seed}
			}
			var results []logtmse.RunResult
			results, err = logtmse.RunCellsShared(ctx, group, *jobs)
			for i := range results {
				rows = append(rows, cell{res: results[i]})
			}
		} else {
			rows, err = sweep.Map(ctx, len(cells), *jobs, func(i int) cell {
				res, err := logtmse.RunOne(rcFor(i), *seed)
				return cell{res: res, err: err}
			})
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "table3: %v\n", err)
			if errors.Is(err, context.Canceled) {
				os.Exit(130)
			}
			os.Exit(1)
		}
		for i, c := range cells {
			if rows[i].err != nil {
				fmt.Fprintf(os.Stderr, "table3: %v\n", rows[i].err)
				os.Exit(1)
			}
			st := rows[i].res.Stats
			fmt.Printf("%-14s %12d %8d %10d %10d %8.1f\n",
				c.label, st.Commits, st.Aborts, st.Stalls, st.StallEpisodes, st.FPEpisodePct())
		}
		fmt.Println()
	}
	if *sharePrefix {
		fmt.Fprintln(os.Stderr, logtmse.PrefixSummary())
	}
	if cache != nil {
		fmt.Fprintln(os.Stderr, logtmse.CacheSummary(cache))
	}
	fmt.Println("Paper trends (Table 3): stalls >> aborts everywhere; false-positive")
	fmt.Println("share of conflicts is 0 for Perfect, grows as signatures shrink")
	fmt.Println("(0-60% at 2 Kb, 40-82% at 64 bits); BS_64 changes Raytrace aborts most.")
}
