// Command ablation runs the design-choice studies: the §7 broadcast-
// snooping CMP versus the baseline directory protocol, and a bit-select
// signature size sweep (64 bits to 8 Kb) for the signature-sensitive
// benchmarks.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"logtmse"
	"logtmse/internal/sig"
	"logtmse/internal/stats"
	"logtmse/internal/sweep"
	"logtmse/internal/workload"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	scale := flag.Float64("scale", 0.5, "input scale (1.0 = paper inputs)")
	seeds := flag.Int("seeds", 3, "seeds per cell")
	jobs := flag.Int("j", 0, "parallel simulation cells (0 = GOMAXPROCS); output is identical for any -j")
	useCache := flag.Bool("cache", false, "memoize cell results by fingerprint (output is byte-identical either way)")
	cacheDir := flag.String("cache-dir", "", "persist cached cell results in this directory across invocations (implies -cache)")
	sharePrefix := flag.Bool("share-prefix", false, "run the Ablation 2 size sweep as prefix-shared groups: one reference simulation per (benchmark, seed), sizes forked from snapshots (output is byte-identical either way)")
	flag.Parse()
	cache := logtmse.CacheFromFlags(*useCache, *cacheDir)
	seedList := make([]int64, *seeds)
	for i := range seedList {
		seedList[i] = int64(i + 1)
	}
	perfect, _ := logtmse.VariantByName("Perfect")

	fmt.Printf("Ablation 1: directory vs. snooping coherence (Perfect signatures, scale %.2f)\n", *scale)
	fmt.Printf("%-12s %16s %16s %10s\n", "Benchmark", "Directory c/u", "Snoop c/u", "Dir/Snoop")
	for _, w := range logtmse.Workloads() {
		dirP := logtmse.DefaultParams()
		snpP := logtmse.DefaultParams()
		snpP.Protocol = logtmse.ProtocolSnoop
		dir, err := logtmse.RunContext(ctx, logtmse.RunConfig{Workload: w.Name, Variant: perfect, Scale: *scale, Seeds: seedList, Params: &dirP, Jobs: *jobs, Cache: cache})
		if err != nil {
			fatal(err)
		}
		snp, err := logtmse.RunContext(ctx, logtmse.RunConfig{Workload: w.Name, Variant: perfect, Scale: *scale, Seeds: seedList, Params: &snpP, Jobs: *jobs, Cache: cache})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-12s %16.0f %16.0f %10.2f\n", w.Name, dir.Mean(), snp.Mean(),
			stats.Speedup(dir.CPU, snp.CPU))
	}

	fmt.Printf("\nAblation 2: signature size sweep (speedup vs Perfect, scale %.2f)\n", *scale)
	sizes := []int{64, 256, 1024, 2048, 8192}
	kinds := []struct {
		label string
		kind  sig.Kind
	}{
		{"BS", sig.KindBitSelect},
		{"H3", sig.KindH3}, // the multi-hash "creative signature" §5 anticipates
	}
	// The Perfect reference is one cell per benchmark — compute it once
	// here, not once per signature kind.
	sigWLs := []string{"Raytrace", "Radiosity", "BerkeleyDB"}
	bases := make(map[string]logtmse.Aggregate, len(sigWLs))
	for _, name := range sigWLs {
		base, err := logtmse.RunContext(ctx, logtmse.RunConfig{Workload: name, Variant: perfect, Scale: *scale, Seeds: seedList, Jobs: *jobs, Cache: cache})
		if err != nil {
			fatal(err)
		}
		bases[name] = base
	}
	for _, k := range kinds {
		fmt.Printf("%-12s", "Benchmark")
		for _, s := range sizes {
			fmt.Printf("%10s", fmt.Sprintf("%s_%d", k.label, s))
		}
		fmt.Println()
		for _, name := range sigWLs {
			fmt.Printf("%-12s", name)
			type cell struct {
				agg logtmse.Aggregate
				err error
			}
			sizeVariant := func(i int) logtmse.Variant {
				return logtmse.Variant{
					Name: fmt.Sprintf("%s_%d", k.label, sizes[i]),
					Mode: workload.TM,
					Sig:  sig.Config{Kind: k.kind, Bits: sizes[i]},
				}
			}
			var row []cell
			if *sharePrefix {
				// Size-major cells: each seed's five sizes share one
				// prefix group, and each size's Aggregate is reassembled
				// in seed order — bit-identical to RunContext's.
				var cells []logtmse.SweepCell
				for i := range sizes {
					for _, s := range seedList {
						cells = append(cells, logtmse.SweepCell{
							RC:   logtmse.RunConfig{Workload: name, Variant: sizeVariant(i), Scale: *scale, Cache: cache},
							Seed: s,
						})
					}
				}
				results, err := logtmse.RunCellsShared(ctx, cells, *jobs)
				if err != nil {
					fatal(err)
				}
				for i := range sizes {
					agg := logtmse.Aggregate{Workload: name, Variant: sizeVariant(i)}
					for j := range seedList {
						r := results[i*len(seedList)+j]
						agg.Runs = append(agg.Runs, r)
						agg.CPU.Add(r.CyclesPerUnit)
					}
					row = append(row, cell{agg: agg})
				}
			} else {
				var err error
				row, err = sweep.Map(ctx, len(sizes), *jobs, func(i int) cell {
					agg, err := logtmse.RunContext(ctx, logtmse.RunConfig{Workload: name, Variant: sizeVariant(i), Scale: *scale, Seeds: seedList, Cache: cache})
					return cell{agg: agg, err: err}
				})
				if err != nil {
					fatal(err)
				}
			}
			for i := range sizes {
				if row[i].err != nil {
					fatal(row[i].err)
				}
				fmt.Printf("%10.3f", stats.Speedup(bases[name].CPU, row[i].agg.CPU))
			}
			fmt.Println()
		}
	}
	fmt.Printf("\nAblation 3: single CMP vs. four CMPs (§7), same 16 cores, scale %.2f\n", *scale)
	fmt.Printf("%-12s %16s %16s %12s\n", "Benchmark", "1-chip c/u", "4-chip c/u", "Slowdown")
	for _, name := range []string{"BerkeleyDB", "Mp3d"} {
		oneP := logtmse.DefaultParams()
		fourP := logtmse.DefaultParams()
		fourP.Chips = 4
		fourP.GridW, fourP.GridH = 2, 2
		fourP.InterChipLat = 50
		one, err := logtmse.RunContext(ctx, logtmse.RunConfig{Workload: name, Variant: perfect, Scale: *scale, Seeds: seedList, Params: &oneP, Jobs: *jobs, Cache: cache})
		if err != nil {
			fatal(err)
		}
		four, err := logtmse.RunContext(ctx, logtmse.RunConfig{Workload: name, Variant: perfect, Scale: *scale, Seeds: seedList, Params: &fourP, Jobs: *jobs, Cache: cache})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-12s %16.0f %16.0f %11.2fx\n", name, one.Mean(), four.Mean(),
			four.Mean()/one.Mean())
	}

	fmt.Printf("\nAblation 4: conflict-resolution policies (BerkeleyDB, Perfect, scale %.2f)\n", *scale)
	fmt.Printf("%-18s %14s %10s %10s\n", "Policy", "cycles/unit", "aborts", "stalls")
	for _, pol := range []struct {
		name string
		set  func(*logtmse.Params)
	}{
		{"stall-abort", func(p *logtmse.Params) {}},
		{"requester-aborts", func(p *logtmse.Params) { p.Resolution = logtmse.ResolveRequesterAborts }},
		{"younger-aborts", func(p *logtmse.Params) { p.Resolution = logtmse.ResolveYoungerAborts }},
	} {
		p := logtmse.DefaultParams()
		pol.set(&p)
		agg, err := logtmse.RunContext(ctx, logtmse.RunConfig{Workload: "BerkeleyDB", Variant: perfect, Scale: *scale, Seeds: seedList, Params: &p, Jobs: *jobs, Cache: cache})
		if err != nil {
			fatal(err)
		}
		tot := agg.TotalStats()
		fmt.Printf("%-18s %14.0f %10d %10d\n", pol.name, agg.Mean(), tot.Aborts, tot.Stalls)
	}

	fmt.Printf("\nAblation 5: backup signatures for nesting (§3.2), BS_2048\n")
	for _, backups := range []int{0, 1, 4} {
		p := logtmse.DefaultParams()
		p.SigBackupCopies = backups
		v := logtmse.Variant{Name: "BS", Mode: workload.TM,
			Sig: sig.Config{Kind: sig.KindBitSelect, Bits: 2048}}
		agg, err := logtmse.RunContext(ctx, logtmse.RunConfig{Workload: "NestedMicro", Variant: v, Scale: *scale, Seeds: seedList, Params: &p, Jobs: *jobs, Cache: cache})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  %d backup copies: %10.0f cycles/unit\n", backups, agg.Mean())
	}

	fmt.Printf("\nAblation 6: original LogTM (R/W cache bits) vs. LogTM-SE, scale %.2f\n", *scale)
	fmt.Printf("%-12s %16s %16s %12s\n", "Benchmark", "LogTM c/u", "LogTM-SE c/u", "SE/LogTM")
	for _, w := range logtmse.Workloads() {
		seP := logtmse.DefaultParams()
		origP := logtmse.DefaultParams()
		origP.CD = logtmse.CDCacheBits
		se, err := logtmse.RunContext(ctx, logtmse.RunConfig{Workload: w.Name, Variant: perfect, Scale: *scale, Seeds: seedList, Params: &seP, Jobs: *jobs, Cache: cache})
		if err != nil {
			fatal(err)
		}
		orig, err := logtmse.RunContext(ctx, logtmse.RunConfig{Workload: w.Name, Variant: perfect, Scale: *scale, Seeds: seedList, Params: &origP, Jobs: *jobs, Cache: cache})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-12s %16.0f %16.0f %11.2fx\n", w.Name, orig.Mean(), se.Mean(),
			orig.Mean()/se.Mean())
	}

	fmt.Printf("\nAblation 7: uncontended vs. modeled network/bank contention, scale %.2f\n", *scale)
	fmt.Printf("%-12s %18s %16s %10s\n", "Benchmark", "Uncontended c/u", "Contended c/u", "Slowdown")
	for _, name := range []string{"BerkeleyDB", "Raytrace"} {
		offP := logtmse.DefaultParams()
		onP := logtmse.DefaultParams()
		onP.ModelContention = true
		off, err := logtmse.RunContext(ctx, logtmse.RunConfig{Workload: name, Variant: perfect, Scale: *scale, Seeds: seedList, Params: &offP, Jobs: *jobs, Cache: cache})
		if err != nil {
			fatal(err)
		}
		on, err := logtmse.RunContext(ctx, logtmse.RunConfig{Workload: name, Variant: perfect, Scale: *scale, Seeds: seedList, Params: &onP, Jobs: *jobs, Cache: cache})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-12s %18.0f %16.0f %9.2fx\n", name, off.Mean(), on.Mean(), on.Mean()/off.Mean())
	}

	if *sharePrefix {
		fmt.Fprintln(os.Stderr, logtmse.PrefixSummary())
	}
	if cache != nil {
		fmt.Fprintln(os.Stderr, logtmse.CacheSummary(cache))
	}
	fmt.Println("\nExpected shapes: snooping within ~10-20% of the directory (broadcasts")
	fmt.Println("cost latency but avoid indirection); BS speedup vs Perfect approaches")
	fmt.Println("1.0 as the signature grows (Raytrace/Radiosity hurt most at 64 bits);")
	fmt.Println("four chips pay inter-chip latency on shared data; stall-abort beats")
	fmt.Println("abort-always under contention; backup signatures matter only for")
	fmt.Println("nesting-heavy code.")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ablation: %v\n", err)
	if errors.Is(err, context.Canceled) {
		os.Exit(130) // interrupted, not failed
	}
	os.Exit(1)
}
