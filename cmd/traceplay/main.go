// Command traceplay supports trace-driven simulation: it generates
// synthetic transactional memory traces in the compact binary format and
// replays trace files on the simulated LogTM-SE machine.
//
//	traceplay -gen /tmp/t.trace -txns 500 -seed 7   # write a trace
//	traceplay -play /tmp/t.trace -threads 8         # replay on 8 threads
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"logtmse"
	"logtmse/internal/addr"
	"logtmse/internal/core"
	"logtmse/internal/trace"
)

func main() {
	gen := flag.String("gen", "", "write a synthetic trace to this file and exit")
	txns := flag.Int("txns", 500, "transactions in the generated trace")
	seed := flag.Int64("seed", 1, "generation / simulation seed")
	play := flag.String("play", "", "trace file to replay")
	threads := flag.Int("threads", 8, "threads replaying the trace")
	flag.Parse()

	switch {
	case *gen != "":
		tr := synthesize(*txns, *seed)
		f, err := os.Create(*gen)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := tr.Encode(f); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d ops (%d transactions) to %s\n", len(tr.Ops), *txns, *gen)
	case *play != "":
		f, err := os.Open(*play)
		if err != nil {
			fatal(err)
		}
		tr, err := trace.Decode(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		replay(tr, *threads, *seed)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// synthesize builds a trace with the shape of the paper's workloads:
// small transactions over a skewed shared region, occasional nesting.
func synthesize(txns int, seed int64) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := &trace.Trace{}
	for i := 0; i < txns; i++ {
		tr.Begin()
		n := 1 + rng.Intn(6)
		for j := 0; j < n; j++ {
			block := addr.VAddr(0x10_0000 + rng.Intn(256)*64)
			if rng.Intn(3) == 0 {
				tr.FetchAdd(block, 1)
			} else {
				tr.Load(block)
			}
		}
		if rng.Intn(8) == 0 {
			tr.Begin()
			tr.FetchAdd(addr.VAddr(0x20_0000+rng.Intn(64)*64), 1)
			tr.Commit()
		}
		tr.Compute(uint64(20 + rng.Intn(100)))
		tr.Commit()
		tr.WorkUnit()
		tr.Compute(uint64(50 + rng.Intn(200)))
	}
	return tr
}

func replay(tr *trace.Trace, threads int, seed int64) {
	params := logtmse.DefaultParams()
	params.Seed = seed
	sys, err := core.NewSystem(params)
	if err != nil {
		fatal(err)
	}
	pt := sys.NewPageTable(1)
	for i := 0; i < threads; i++ {
		c := i % params.Cores
		th := (i / params.Cores) % params.ThreadsPerCore
		if _, err := sys.SpawnOn(c, th, fmt.Sprintf("trace-%d", i), 1, pt, func(a *core.API) {
			if err := trace.Play(a, tr); err != nil {
				fatal(err)
			}
		}); err != nil {
			fatal(err)
		}
	}
	cycles := sys.Run()
	if !sys.AllDone() {
		fatal(fmt.Errorf("stuck threads: %v", sys.Stuck()))
	}
	st := sys.Stats()
	fmt.Printf("replayed %d ops x %d threads\n", len(tr.Ops), threads)
	fmt.Printf("  cycles   %d\n", cycles)
	fmt.Printf("  commits  %d (nested %d)\n", st.Commits, st.NestedCommits)
	fmt.Printf("  aborts   %d\n", st.Aborts)
	fmt.Printf("  stalls   %d\n", st.Stalls)
	fmt.Printf("  units    %d\n", st.WorkUnits)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "traceplay:", err)
	os.Exit(1)
}
