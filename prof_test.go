package logtmse

import (
	"strings"
	"testing"
)

// TestProfilerDoesNotPerturb extends the instrumentation bit-identity
// gate to the attribution layer: attaching a conflict profiler, a
// flight recorder, or both plus a recording sink must leave Stats and
// cycle counts identical to the bare run of the same seed.
func TestProfilerDoesNotPerturb(t *testing.T) {
	v, _ := VariantByName("CBS")
	for _, wl := range []string{"BerkeleyDB", "Mp3d"} {
		bare, err := RunOne(RunConfig{Workload: wl, Variant: v, Scale: testScale}, 9)
		if err != nil {
			t.Fatal(err)
		}
		check := func(label string, rc RunConfig) {
			rc.Workload, rc.Variant, rc.Scale = wl, v, testScale
			r, err := RunOne(rc, 9)
			if err != nil {
				t.Fatal(err)
			}
			if bare.Stats != r.Stats {
				t.Errorf("%s/%s perturbed Stats:\nbare %+v\ngot  %+v", wl, label, bare.Stats, r.Stats)
			}
			if bare.Cycles != r.Cycles {
				t.Errorf("%s/%s changed cycle count: %d vs %d", wl, label, bare.Cycles, r.Cycles)
			}
		}
		check("prof", RunConfig{Prof: NewProfiler()})
		check("flight", RunConfig{Flight: NewFlightRecorder(16, 64)})
		check("prof+flight+sink", RunConfig{
			Prof: NewProfiler(), Flight: NewFlightRecorder(16, 64), Sink: &Recorder{},
		})
	}
}

// TestProfilerReconcilesFigure4 is the attribution acceptance
// criterion: on the paper's Figure 4 workloads the signature-positive
// partition must sum exactly to the engine's conflict totals — stalls,
// false-positive stalls, summary hits and possible_cycle aborts — for
// both a real Bloom variant and the coarse variant.
func TestProfilerReconcilesFigure4(t *testing.T) {
	for _, wl := range []string{"BerkeleyDB", "Mp3d", "Raytrace", "Cholesky", "Radiosity"} {
		for _, vn := range []string{"BS", "CBS"} {
			v, ok := VariantByName(vn)
			if !ok {
				t.Fatalf("unknown variant %q", vn)
			}
			p := NewProfiler()
			r, err := RunOne(RunConfig{Workload: wl, Variant: v, Scale: testScale, Prof: p}, 3)
			if err != nil {
				t.Fatal(err)
			}
			st := r.Stats
			if got := p.Attr.TotalNacks(); got != st.Stalls {
				t.Errorf("%s/%s: attributed NACKs %d != engine stalls %d", wl, vn, got, st.Stalls)
			}
			if got := p.Attr.FalsePositives(); got != st.FalsePositiveStalls {
				t.Errorf("%s/%s: attributed false positives %d != engine %d", wl, vn, got, st.FalsePositiveStalls)
			}
			if p.Attr.Summary != st.SummaryConflicts {
				t.Errorf("%s/%s: attributed summary hits %d != engine %d", wl, vn, p.Attr.Summary, st.SummaryConflicts)
			}
			if p.ConflictAborts != st.PossibleCycleAborts {
				t.Errorf("%s/%s: conflict aborts %d != possible-cycle aborts %d",
					wl, vn, p.ConflictAborts, st.PossibleCycleAborts)
			}
		}
	}
}

// TestFlightRecorderAttachesToHungRunDiagnostics pins the postmortem
// path: a run that exhausts MaxCycles with a flight recorder attached
// reports the recorder's event dump in the error.
func TestFlightRecorderAttachesToHungRunDiagnostics(t *testing.T) {
	v, _ := VariantByName("BS")
	f := NewFlightRecorder(16, 32)
	_, err := RunOne(RunConfig{
		Workload: "BerkeleyDB", Variant: v, Scale: testScale,
		Flight: f, MaxCycles: 500, // far too few: force the hung-run path
	}, 5)
	if err == nil {
		t.Fatal("truncated run did not error")
	}
	if !strings.Contains(err.Error(), "flight recorder") {
		t.Errorf("hung-run error lacks the flight dump:\n%v", err)
	}
}

// TestProfilerRunsCacheBypass pins the caching contract: a profiled or
// flight-recorded run is never served from the result cache (a cached
// cell would silently skip the sinks).
func TestProfilerRunsCacheBypass(t *testing.T) {
	if Cacheable(RunConfig{Prof: NewProfiler()}) {
		t.Error("profiled run reported cacheable")
	}
	if Cacheable(RunConfig{Flight: NewFlightRecorder(4, 4)}) {
		t.Error("flight-recorded run reported cacheable")
	}
	if !Cacheable(RunConfig{}) {
		t.Error("bare run reported uncacheable")
	}
}
