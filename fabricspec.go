package logtmse

import (
	"context"
	"encoding/json"
	"fmt"

	"logtmse/internal/fabric"
)

// The fabric boundary: how a Figure 4 campaign becomes fabric cells and
// how a worker turns one back into a simulation.
//
// A CellSpec deliberately carries only the compact campaign inputs —
// workload, variant label, scale, threads, seed — never a serialized
// RunConfig (whose observer fields are functions). Both sides derive
// the full RunConfig through the same DefaultParams()+VariantByName
// path, and the cell's fingerprint doubles as a version-skew guard: a
// worker whose binary derives a different fingerprint for the same spec
// (older Params schema, recalibrated workload, bumped
// FingerprintSchemaVersion) refuses the cell instead of contributing a
// stale result under a current key.

// CellSpec is the wire form of one Figure 4 simulation cell.
type CellSpec struct {
	Workload string  `json:"workload"`
	Variant  string  `json:"variant"`
	Scale    float64 `json:"scale"`
	Threads  int     `json:"threads"`
	Seed     int64   `json:"seed"`
}

// runConfig derives the full cell configuration from the compact spec.
func (s CellSpec) runConfig() (RunConfig, error) {
	v, ok := VariantByName(s.Variant)
	if !ok {
		return RunConfig{}, fmt.Errorf("logtmse: unknown variant %q", s.Variant)
	}
	if _, ok := WorkloadByName(s.Workload); !ok {
		return RunConfig{}, fmt.Errorf("logtmse: unknown workload %q", s.Workload)
	}
	params := DefaultParams()
	return RunConfig{
		Workload: s.Workload,
		Variant:  v,
		Scale:    s.Scale,
		Threads:  s.Threads,
		Params:   &params,
		Seeds:    []int64{s.Seed},
	}.withDefaults(), nil
}

// Figure4Cells enumerates a Figure 4 campaign as fabric cells in the
// exact submission order of a local run (workload-major, then variant,
// then seed — the MapNotify order of Figure4Observed), keyed by cell
// fingerprint. Reassembling the payloads in index order therefore
// reproduces the local report byte for byte.
func Figure4Cells(workloads []string, scale float64, seeds []int64, threads int) ([]fabric.Cell, error) {
	var cells []fabric.Cell
	for _, w := range workloads {
		for _, v := range Figure4Variants() {
			for _, seed := range seeds {
				spec := CellSpec{Workload: w, Variant: v.Name, Scale: scale, Threads: threads, Seed: seed}
				rc, err := spec.runConfig()
				if err != nil {
					return nil, err
				}
				key, err := Fingerprint(rc, seed)
				if err != nil {
					return nil, err
				}
				raw, err := json.Marshal(spec)
				if err != nil {
					return nil, err
				}
				cells = append(cells, fabric.Cell{Index: len(cells), Key: key, Spec: raw})
			}
		}
	}
	return cells, nil
}

// ExecuteCell returns the fabric executor: decode the spec, re-derive
// the cell, verify the fingerprint (the skew guard), simulate, and
// gob-encode the result. The optional cache is threaded into RunOne, so
// a worker with a disk or remote memo tier serves repeats without
// simulating.
func ExecuteCell(cache *ResultCache) func(ctx context.Context, c fabric.Cell) ([]byte, error) {
	return func(_ context.Context, c fabric.Cell) ([]byte, error) {
		var spec CellSpec
		if err := json.Unmarshal(c.Spec, &spec); err != nil {
			return nil, fmt.Errorf("logtmse: undecodable cell spec: %w", err)
		}
		rc, err := spec.runConfig()
		if err != nil {
			return nil, err
		}
		key, err := Fingerprint(rc, spec.Seed)
		if err != nil {
			return nil, err
		}
		if key != c.Key {
			return nil, fmt.Errorf("logtmse: version skew: this binary derives fingerprint %.12s for cell %.12s — refusing to compute a stale result", key, c.Key)
		}
		rc.Cache = cache
		r, err := RunOne(rc, spec.Seed)
		if err != nil {
			return nil, err
		}
		return encodeResult(r)
	}
}

// ExecuteCellsShared returns the fabric batch executor for
// Worker.ExecBatch: decode and skew-guard every cell exactly as
// ExecuteCell does, then run the batch through RunCellsShared, so cells
// of one variant group that the coordinator co-located in this grant
// simulate their common prefix once. Results are byte-identical to
// per-cell execution; a skew or decode failure on any cell fails the
// batch (the coordinator re-issues and eventually quarantines them
// individually).
func ExecuteCellsShared(cache *ResultCache) func(ctx context.Context, cells []fabric.Cell) ([][]byte, error) {
	return func(ctx context.Context, cells []fabric.Cell) ([][]byte, error) {
		sweepCells := make([]SweepCell, len(cells))
		for i, c := range cells {
			var spec CellSpec
			if err := json.Unmarshal(c.Spec, &spec); err != nil {
				return nil, fmt.Errorf("logtmse: undecodable cell spec: %w", err)
			}
			rc, err := spec.runConfig()
			if err != nil {
				return nil, err
			}
			key, err := Fingerprint(rc, spec.Seed)
			if err != nil {
				return nil, err
			}
			if key != c.Key {
				return nil, fmt.Errorf("logtmse: version skew: this binary derives fingerprint %.12s for cell %.12s — refusing to compute a stale result", key, c.Key)
			}
			rc.Cache = cache
			sweepCells[i] = SweepCell{RC: rc, Seed: spec.Seed}
		}
		results, err := RunCellsShared(ctx, sweepCells, 0)
		if err != nil {
			return nil, err
		}
		payloads := make([][]byte, len(results))
		for i, r := range results {
			if payloads[i], err = encodeResult(r); err != nil {
				return nil, err
			}
		}
		return payloads, nil
	}
}

// Figure4RowsFromPayloads reassembles the fabric campaign's payloads
// (in Figure4Cells index order) into the same rows a local
// Figure4Observed run produces.
func Figure4RowsFromPayloads(workloads []string, seeds []int64, payloads [][]byte) ([]Figure4Row, error) {
	perRow := len(Figure4Variants()) * len(seeds)
	if len(payloads) != len(workloads)*perRow {
		return nil, fmt.Errorf("logtmse: %d payloads for %d workloads × %d cells/row", len(payloads), len(workloads), perRow)
	}
	rows := make([]Figure4Row, 0, len(workloads))
	for wi, w := range workloads {
		outs := make([]seedOut, perRow)
		for i := range outs {
			r, err := decodeResult(payloads[wi*perRow+i])
			if err != nil {
				return nil, fmt.Errorf("logtmse: payload %d: %w", wi*perRow+i, err)
			}
			outs[i] = seedOut{r: r}
		}
		row, err := figure4RowFromOuts(w, seeds, outs)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}
