package logtmse

// Attribution surface: the library re-exports the internal/prof types
// so downstream users can attach the conflict-attribution profiler,
// the flight recorder and campaign telemetry without importing
// internal packages. See DESIGN.md §11.

import (
	"logtmse/internal/obs"
	"logtmse/internal/prof"
)

// Re-exported attribution and telemetry types.
type (
	// Profiler attributes conflicts from the lifecycle event stream:
	// per-address heatmaps, Bloom false-positive partition, blame
	// graphs, wasted-work accounting (RunConfig.Prof).
	Profiler = prof.Profiler
	// Attribution partitions every signature-positive NACK into
	// {true conflict, Bloom alias, sticky carryover} plus the
	// summary-signature hits.
	Attribution = prof.Attribution
	// BlockStat is the per-block conflict heatmap entry.
	BlockStat = prof.BlockStat
	// BlameEdge is one waits-for edge (From stalled on To).
	BlameEdge = prof.Edge
	// FlightRecorder keeps bounded per-core rings of recent lifecycle
	// events for postmortems (RunConfig.Flight).
	FlightRecorder = prof.FlightRecorder
	// Campaign is the live telemetry of one running sweep, served as
	// Prometheus /metrics and JSON /progress.
	Campaign = prof.Campaign
)

// NewProfiler returns an empty conflict-attribution profiler.
func NewProfiler() *Profiler { return prof.New() }

// NewFlightRecorder returns a recorder with perCore event slots for
// each of cores rings plus one protocol ring (perCore <= 0 → 256).
func NewFlightRecorder(cores, perCore int) *FlightRecorder {
	return prof.NewFlightRecorder(cores, perCore)
}

// NewCampaign returns live telemetry for a sweep of total cells.
func NewCampaign(name string, total int) *Campaign { return prof.NewCampaign(name, total) }

// ServeCampaign exposes the campaign's /metrics and /progress on addr
// until stop is called, returning the bound address.
func ServeCampaign(addr string, c *Campaign) (bound string, stop func(), err error) {
	return prof.Serve(addr, c)
}

// effectiveSink combines the cell's sink — RunConfig.Sink when set,
// else the Params-level sink — with the attribution observers into one
// fan-out. The typed-nil pointers must not reach Tee as non-nil
// interfaces, hence the explicit guards.
func effectiveSink(rc RunConfig, base Sink) Sink {
	sinks := make([]obs.Sink, 0, 3)
	if rc.Sink != nil {
		base = rc.Sink
	}
	if base != nil {
		sinks = append(sinks, base)
	}
	if rc.Prof != nil {
		sinks = append(sinks, rc.Prof)
	}
	if rc.Flight != nil {
		sinks = append(sinks, rc.Flight)
	}
	if len(sinks) == 0 {
		return nil
	}
	return obs.Tee(sinks...)
}
