package logtmse

// Observability surface: the library re-exports the internal/obs types
// so downstream users can attach sinks and metrics without importing
// internal packages. See the "Observability" section of DESIGN.md.

import (
	"io"

	"logtmse/internal/obs"
)

// Re-exported observability types.
type (
	// Sink receives the structured lifecycle event stream.
	Sink = obs.Sink
	// Event is one lifecycle event (value type; emission is
	// allocation-free).
	Event = obs.Event
	// EventKind enumerates the lifecycle events.
	EventKind = obs.Kind
	// AbortCause classifies EvTxAbort events.
	AbortCause = obs.AbortCause
	// Recorder is a Sink that retains every event in order.
	Recorder = obs.Recorder
	// DiscardSink drops every event; it measures the cost of the probes
	// themselves (see BenchmarkObsOverhead).
	DiscardSink = obs.Discard
	// FuncSink adapts a function to the Sink interface.
	FuncSink = obs.FuncSink
	// Registry holds counters, gauges, histograms and their interval
	// snapshots.
	Registry = obs.Registry
	// Histogram is a log-scale histogram of a nonnegative quantity.
	Histogram = obs.Histogram
	// CoreMetrics bundles the engine-side histograms with a registry.
	CoreMetrics = obs.CoreMetrics
	// CatapultTrace is the Chrome trace-event JSON document.
	CatapultTrace = obs.CatapultTrace
)

// Lifecycle event kinds.
const (
	EvTxBegin         = obs.KindTxBegin
	EvTxCommit        = obs.KindTxCommit
	EvTxAbort         = obs.KindTxAbort
	EvNack            = obs.KindNack
	EvStallStart      = obs.KindStallStart
	EvStallEnd        = obs.KindStallEnd
	EvLogWalkStart    = obs.KindLogWalkStart
	EvLogWalkEnd      = obs.KindLogWalkEnd
	EvSummaryConflict = obs.KindSummaryConflict
	EvStickyForward   = obs.KindStickyForward
)

// Abort causes.
const (
	AbortConflict   = obs.CauseConflict
	AbortSummary    = obs.CauseSummary
	AbortOverflow   = obs.CauseOverflow
	AbortInjected   = obs.CauseInjected
	AbortStarvation = obs.CauseStarvation
)

// EvFaultInject is one applied fault-injection action (Arg carries the
// fault class).
const EvFaultInject = obs.KindFaultInject

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// NewCoreMetrics registers the engine's histograms in reg and returns
// the bundle to pass as RunConfig.Metrics.
func NewCoreMetrics(reg *Registry) *CoreMetrics { return obs.NewCoreMetrics(reg) }

// Tee fans one event stream out to several sinks.
func Tee(sinks ...Sink) Sink { return obs.Tee(sinks...) }

// BuildCatapult converts a recorded event stream into a Chrome
// trace-event document (one process per core, one track per thread).
func BuildCatapult(events []Event) *CatapultTrace { return obs.BuildCatapult(events) }

// WriteCatapult encodes the event stream as catapult JSON, loadable in
// chrome://tracing and Perfetto.
func WriteCatapult(w io.Writer, events []Event) error { return obs.WriteCatapult(w, events) }
