module logtmse

go 1.22
