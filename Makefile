.PHONY: check test build bench

# The pre-PR gate: gofmt, go vet, go test -race (see scripts/check.sh).
check:
	./scripts/check.sh

build:
	go build ./...

test:
	go test ./...

bench:
	go test -bench . -benchtime 1x -run xxx .
